// Package experiments reproduces every table and figure of the paper's
// evaluation (§2.3, §4.3, §6) plus ablations of the design choices, as
// self-describing text tables. It is the shared engine behind the
// repository's bench harness (bench_test.go) and the benchsuite CLI.
//
// Absolute speeds will not match the paper's testbed (the substrate is a
// simulator); the reproduced artifact is the shape: who wins, by roughly
// what factor, and where crossovers fall. Each experiment exposes scalar
// Metrics so shape claims are machine-checkable.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"bytescheduler/internal/core"
	"bytescheduler/internal/model"
	"bytescheduler/internal/network"
	"bytescheduler/internal/plugin"
	"bytescheduler/internal/runner"
	"bytescheduler/internal/sweep"
)

// Opts controls experiment sizing and execution.
type Opts struct {
	// Quick shrinks grids and trial counts for CI and `go test -bench`.
	Quick bool
	// Seed seeds all stochastic components (tuners, jitter).
	Seed int64
	// Engine executes the experiment's independent simulation trials on a
	// worker pool with a memoizing result cache. nil selects
	// sweep.Default() (GOMAXPROCS workers, process-wide shared cache).
	// Results are bitwise-identical for any pool size — per-trial
	// randomness is derived from Seed, never from execution order.
	Engine *sweep.Engine
}

// engine returns the configured trial engine, defaulting to the
// process-wide one.
func (o Opts) engine() *sweep.Engine {
	if o.Engine != nil {
		return o.Engine
	}
	return sweep.Default()
}

// run executes one trial through the engine (inline, memoized). Safe
// inside parallel bodies.
func (o Opts) run(cfg runner.Config) (runner.Result, error) {
	return o.engine().Run(cfg)
}

// parallel fans fn(0..n-1) across the engine's worker pool. Bodies must
// write results into index-addressed slots and must not call parallel
// recursively (they may call run freely).
func (o Opts) parallel(n int, fn func(i int) error) error {
	return o.engine().Map(n, fn)
}

// speedWithParams is the engine-backed tuning objective: cfg under a
// ByteScheduler policy with the given partition and credit sizes, memoized
// by the engine's cache (BO re-probes and overlapping grid points are
// computed once).
func (o Opts) speedWithParams(cfg runner.Config, partition, credit int64) (float64, error) {
	res, err := o.run(scheduledCfg(cfg, partition, credit))
	if err != nil {
		return 0, err
	}
	return res.SamplesPerSec, nil
}

// Table is a rendered experiment result.
type Table struct {
	// ID is the experiment identifier from DESIGN.md, e.g. "FIG10".
	ID string
	// Title describes the experiment.
	Title string
	// Columns and Rows hold the rendered data.
	Columns []string
	Rows    [][]string
	// Metrics exposes scalar findings for assertions and bench metrics,
	// e.g. "speedup_min_pct".
	Metrics map[string]float64
	// Notes records shape observations relative to the paper.
	Notes []string
}

// Format renders the table as aligned text.
func (t Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	if len(t.Metrics) > 0 {
		keys := make([]string, 0, len(t.Metrics))
		for k := range t.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteString("metrics:")
		for _, k := range keys {
			fmt.Fprintf(&b, " %s=%.2f", k, t.Metrics[k])
		}
		b.WriteByte('\n')
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Experiment is a named, runnable reproduction target.
type Experiment struct {
	ID   string
	Run  func(Opts) (Table, error)
	Desc string
}

// All returns every experiment in DESIGN.md order.
func All() []Experiment {
	return []Experiment{
		{"FIG2", Fig02Contrived, "contrived 3-layer example (Figure 2)"},
		{"FIG4A", Fig04aPartitionSweep, "FIFO speed vs partition size (Figure 4a)"},
		{"FIG4B", Fig04bCreditSweep, "FIFO speed vs credit size (Figure 4b)"},
		{"FIG9", Fig09BOPosterior, "Bayesian Optimization posterior (Figure 9)"},
		{"FIG10", Fig10VGG16, "VGG16 across 5 setups (Figure 10)"},
		{"FIG11", Fig11ResNet50, "ResNet50 across 5 setups (Figure 11)"},
		{"FIG12", Fig12Transformer, "Transformer across 5 setups (Figure 12)"},
		{"FIG13", Fig13Bandwidth, "bandwidth sweep with/without tuning (Figure 13)"},
		{"FIG14", Fig14SearchCost, "auto-tuning search cost (Figure 14)"},
		{"TAB1", Tab01BestConfig, "best partition/credit sizes (Table 1)"},
		{"TXT1", TxtOtherModels, "AlexNet and VGG19 speedups (§6.2)"},
		{"TXT3", TxtLoadBalance, "PS load balancing (§6.2)"},
		{"ABL-CREDIT", AblationCredit, "credit-based preemption vs stop-and-wait"},
		{"ABL-PARTITION", AblationPartition, "tensor partitioning on/off"},
		{"ABL-PRIORITY", AblationPriority, "priority vs FIFO under partitioning"},
		{"ABL-BARRIER", AblationBarrier, "crossing vs keeping the global barrier"},
		{"ABL-ASYNC", AblationAsyncPS, "synchronous vs asynchronous PS"},
		{"ABL-COLLECTIVE", AblationCollective, "all-reduce algorithm comparison"},
		{"EXT-ONLINE", ExtOnlineTuning, "runtime auto-tuning on a live run (§7)"},
		{"EXT-LAYERWISE", ExtLayerwisePartition, "per-layer partition sizes (§7)"},
		{"EXT-COSCHED", ExtCoScheduling, "two jobs sharing one fabric (§7)"},
		{"EXT-COMPRESS", ExtCompression, "gradient compression x scheduling (§8)"},
		{"EXT-ZOO", ExtZooModels, "extended model zoo (BERT, GNMT, Inception-v3)"},
		{"EXT-FAULTS", ExtFaultTolerance, "fault injection: drops, outage, latency spikes (robustness)"},
		{"EXT-RING", ExtLiveRing, "live ring all-reduce over TCP: scheduled vs FIFO (netar)"},
		{"EXT-FUSION", ExtTensorFusion, "tensor fusion + wire codecs on live PS: fused vs unfused (netps)"},
		{"EXT-AUTOTUNE", ExtAutoTune, "closed-loop online (partition, credit) tuning on live PS across a bandwidth change"},
		{"EXT-BALANCE", ExtLoadBalance, "PS placement strategies on power-law tensors (load balance)"},
		{"EXT-PRIORITY", ExtPriority, "priority policy shootout (sim zoo) + cross-iteration pipelining on both live backends"},
		{"EXT-CLUSTER", ExtCluster, "multi-job cluster scheduling: fair-share + delay-aware placement vs FIFO/uniform"},
		{"THM1", ThmOptimality, "Theorem 1 optimality and the §4.1 overhead bound"},
	}
}

// liveIDs marks experiments that execute on the real network stack
// (wall-clock timings over loopback TCP) rather than the deterministic
// simulator.
var liveIDs = map[string]bool{"EXT-RING": true, "EXT-FUSION": true, "EXT-AUTOTUNE": true, "EXT-PRIORITY": true}

// Live reports whether the experiment measures the live network stack.
// Live metrics are measurements, not derivations: reruns produce
// different bits, so the determinism harnesses (the serial-vs-parallel
// suite, benchsuite -measure-serial) must skip the bitwise comparison.
func (e Experiment) Live() bool { return liveIDs[e.ID] }

// ByID returns the experiment with the given ID (case-insensitive).
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if strings.EqualFold(e.ID, id) {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
}

// setup is one framework/arch/transport combination of §6.1.
type setup struct {
	label     string
	framework plugin.Framework
	arch      runner.Arch
	transport network.Profile
}

// benchSetups returns the five setups shown in Figures 10–12.
func benchSetups() []setup {
	return []setup{
		{"MXNet PS TCP", plugin.MXNet, runner.PS, network.TCP()},
		{"MXNet PS RDMA", plugin.MXNet, runner.PS, network.RDMA()},
		{"TensorFlow PS TCP", plugin.TensorFlow, runner.PS, network.TCP()},
		{"MXNet NCCL RDMA", plugin.MXNet, runner.AllReduce, network.RDMA()},
		{"PyTorch NCCL TCP", plugin.PyTorch, runner.AllReduce, network.TCP()},
	}
}

// calibratedParams returns per-setup, per-model ByteScheduler parameters in
// the spirit of Table 1: PS wants small partitions (fine preemption, load
// spreading); all-reduce wants large ones (per-collective synchronization
// cost); compute-bound ResNet50 prefers the finest preemption. The headline
// figures use these fixed values; Table 1 derives its own via the tuner.
func calibratedParams(arch runner.Arch, modelName string) (partition, credit int64) {
	if arch == runner.PS {
		if modelName == "ResNet50" {
			return 1 << 20, 8 << 20
		}
		return 2 << 20, 16 << 20
	}
	if modelName == "ResNet50" {
		return 32 << 20, 96 << 20
	}
	return 64 << 20, 160 << 20
}

func (s setup) config(m *model.Model, gpus int, gbps float64) runner.Config {
	return runner.Config{
		Model:         m,
		Framework:     s.framework,
		Arch:          s.arch,
		Transport:     s.transport,
		BandwidthGbps: gbps,
		GPUs:          gpus,
		Policy:        core.FIFO(),
	}
}

// scheduledCfg applies the setup's ByteScheduler parameters.
func scheduledCfg(cfg runner.Config, partition, credit int64) runner.Config {
	cfg.Policy = core.ByteScheduler(partition, credit)
	cfg.Scheduled = true
	return cfg
}

func f0(v float64) string   { return fmt.Sprintf("%.0f", v) }
func f1(v float64) string   { return fmt.Sprintf("%.1f", v) }
func pct(v float64) string  { return fmt.Sprintf("%.0f%%", v) }
func mb(bytes int64) string { return fmt.Sprintf("%.0f", float64(bytes)/(1<<20)) }

func speedupPct(base, new float64) float64 {
	if base == 0 {
		return 0
	}
	return (new - base) / base * 100
}

func minMax(vs []float64) (lo, hi float64) {
	lo, hi = vs[0], vs[0]
	for _, v := range vs[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

package experiments

import (
	"fmt"

	"bytescheduler/internal/core"
	"bytescheduler/internal/model"
	"bytescheduler/internal/network"
	"bytescheduler/internal/plugin"
	"bytescheduler/internal/runner"
	"bytescheduler/internal/tune"
)

// Tab01BestConfig reproduces Table 1: the best partition and credit sizes
// (MB) found by the auto-tuner for the three benchmark models under MXNet
// PS RDMA and MXNet NCCL RDMA at 100 Gbps.
func Tab01BestConfig(o Opts) (Table, error) {
	trials := 16
	gpus := 32
	if o.Quick {
		trials = 10
		gpus = 16
	}
	tab := Table{
		ID:      "TAB1",
		Title:   "best partition and credit sizes (MB) found by auto-tuning, 100Gbps RDMA",
		Columns: []string{"model", "arch", "partition_MB", "credit_MB", "speed"},
		Metrics: map[string]float64{},
	}
	models := []func() *model.Model{model.VGG16, model.ResNet50, model.Transformer}
	archs := []struct {
		label string
		arch  runner.Arch
	}{{"PS", runner.PS}, {"NCCL", runner.AllReduce}}
	// The six tuning runs are independent: fan them across the engine's
	// pool (each run's BO loop is sequential inside, probing through the
	// shared memoizing cache) and assemble rows in the original order.
	results := make([]tune.Result, len(models)*len(archs))
	if err := o.parallel(len(results), func(k int) error {
		mk := models[k/len(archs)]
		a := archs[k%len(archs)]
		cfg := runner.Config{
			Model:         mk(),
			Framework:     plugin.MXNet,
			Arch:          a.arch,
			Transport:     network.RDMA(),
			BandwidthGbps: 100,
			GPUs:          gpus,
			Policy:        core.FIFO(),
		}
		results[k] = tune.PartitionCredit(tune.NewBO(tune.ParamBounds(), o.Seed+23),
			func(p, c int64) float64 {
				speed, err := o.speedWithParams(cfg, p, c)
				if err != nil {
					return 0
				}
				return speed
			}, trials)
		return nil
	}); err != nil {
		return Table{}, err
	}
	for k, res := range results {
		mk, a := models[k/len(archs)], archs[k%len(archs)]
		tab.Rows = append(tab.Rows, []string{
			mk().Name, a.label, mb(res.Partition), mb(res.Credit), f0(res.Speed),
		})
		tab.Metrics[fmt.Sprintf("%s_%s_partition_mb", mk().Name, a.label)] =
			float64(res.Partition) / (1 << 20)
		tab.Metrics[fmt.Sprintf("%s_%s_credit_mb", mk().Name, a.label)] =
			float64(res.Credit) / (1 << 20)
	}
	tab.Notes = append(tab.Notes,
		"NCCL wants much larger partitions/credits than PS (per-collective synchronization cost)")
	return tab, nil
}

// TxtOtherModels reproduces the §6.2 text result: AlexNet and VGG19
// speedups with MXNet PS RDMA at 32 GPUs (paper: 96% and 60%).
func TxtOtherModels(o Opts) (Table, error) {
	gpus := 32
	if o.Quick {
		gpus = 16
	}
	tab := Table{
		ID:      "TXT1",
		Title:   "AlexNet and VGG19, MXNet PS RDMA (paper: 96% and 60% at 32 GPUs)",
		Columns: []string{"model", "baseline", "bytescheduler", "speedup"},
		Metrics: map[string]float64{},
	}
	for _, mk := range []func() *model.Model{model.AlexNet, model.VGG19} {
		cfg := runner.Config{
			Model:         mk(),
			Framework:     plugin.MXNet,
			Arch:          runner.PS,
			Transport:     network.RDMA(),
			BandwidthGbps: 100,
			GPUs:          gpus,
			Policy:        core.FIFO(),
		}
		base, err := o.run(cfg)
		if err != nil {
			return Table{}, err
		}
		sched, err := o.run(scheduledCfg(cfg, 2<<20, 8<<20))
		if err != nil {
			return Table{}, err
		}
		sp := speedupPct(base.SamplesPerSec, sched.SamplesPerSec)
		tab.Rows = append(tab.Rows, []string{
			mk().Name, f0(base.SamplesPerSec), f0(sched.SamplesPerSec), pct(sp),
		})
		tab.Metrics[mk().Name+"_speedup_pct"] = sp
	}
	return tab, nil
}

// TxtLoadBalance reproduces the §6.2 load-balancing observation: the
// Transformer's dominant embedding tensor leaves the naive round-robin PS
// severely imbalanced; partitioning rebalances it (paper: up to 171%
// speedup at 16 GPUs PS RDMA).
func TxtLoadBalance(o Opts) (Table, error) {
	cfg := runner.Config{
		Model:         model.Transformer(),
		Framework:     plugin.MXNet,
		Arch:          runner.PS,
		Transport:     network.RDMA(),
		BandwidthGbps: 100,
		GPUs:          16,
		Policy:        core.FIFO(),
	}
	base, err := o.run(cfg)
	if err != nil {
		return Table{}, err
	}
	sched, err := o.run(scheduledCfg(cfg, 2<<20, 8<<20))
	if err != nil {
		return Table{}, err
	}
	sp := speedupPct(base.SamplesPerSec, sched.SamplesPerSec)
	return Table{
		ID:      "TXT3",
		Title:   "Transformer PS load balancing, 16 GPUs MXNet PS RDMA (paper: up to 171%)",
		Columns: []string{"schedule", "samples/s", "ps_load_imbalance", "speedup"},
		Rows: [][]string{
			{"baseline (round-robin tensors)", f0(base.SamplesPerSec), f1(base.LoadImbalance), "-"},
			{"bytescheduler (spread partitions)", f0(sched.SamplesPerSec), f1(sched.LoadImbalance), pct(sp)},
		},
		Metrics: map[string]float64{
			"baseline_imbalance": base.LoadImbalance,
			"sched_imbalance":    sched.LoadImbalance,
			"speedup_pct":        sp,
		},
		Notes: []string{"smaller partitions balance the PS load and contribute beyond pure scheduling gains"},
	}, nil
}

//go:build !race

package experiments

// determinismSuiteIDs names the experiments the determinism test suite
// verifies (parallel metrics bitwise-equal to serial at the same seed).
// Without the race detector the suite covers every registered experiment;
// a nil slice means "all of them".
func determinismSuiteIDs() []string { return nil }

package experiments

import (
	"fmt"

	"bytescheduler/internal/core"
	"bytescheduler/internal/model"
	"bytescheduler/internal/network"
	"bytescheduler/internal/plugin"
	"bytescheduler/internal/runner"
	"bytescheduler/internal/stats"
	"bytescheduler/internal/tensor"
)

// overheadFree strips every fixed cost from a transport, leaving only its
// bandwidth behavior — Theorem 1's assumptions (free preemption, no
// per-partition cost) at the real link rate.
func overheadFree(p network.Profile) network.Profile {
	p.Name = p.Name + "-ideal"
	p.MsgOverhead = 0
	p.PipelinedOverhead = 0
	p.AckDelay = 0
	p.CollectiveLaunch = 0
	p.HopLatency = 0
	return p
}

// ThmOptimality validates the paper's analysis (§4.1) empirically on the
// all-reduce architecture:
//
//  1. Theorem 1 (optimality): with an overhead-free transport and fine
//     partitions, layer-priority scheduling beats or ties every
//     alternative order we can throw at it — FIFO, reversed priority, and
//     seeded random layer orders.
//  2. The overhead bound: with the real transport and finite partition
//     size δ, the extra iteration delay over the measured overhead-free
//     fine-partition run is at most Σ_i ⌊size_i/δ⌋·θ + θ + δ/bandwidth
//     (θ = per-operation synchronization cost).
func ThmOptimality(o Opts) (Table, error) {
	const (
		layers    = 8
		layerSize = 8 << 20
		computeS  = 0.040
		gpus      = 16 // 2 machines
	)
	m := model.Synthetic("thm", layers, layerSize, computeS)

	mkCfg := func(prof network.Profile, policy core.Policy) runner.Config {
		return runner.Config{
			Model:         m,
			Framework:     plugin.MXNet,
			Arch:          runner.AllReduce,
			Transport:     prof,
			BandwidthGbps: 25,
			GPUs:          gpus,
			Policy:        policy,
			Scheduled:     true,
			Iterations:    14,
			Warmup:        4,
		}
	}

	ideal := overheadFree(network.RDMA())
	const fine = 256 << 10

	// Alternative schedules: FIFO, anti-priority (output layers first),
	// and seeded random layer ranks.
	rankPolicy := func(name string, rank []int64) core.Policy {
		return core.Policy{
			Name:          name,
			PartitionUnit: fine,
			CreditBytes:   fine,
			Priority: func(t tensor.Tensor, _ uint64) int64 {
				return rank[t.Layer]
			},
		}
	}
	alternatives := []core.Policy{
		{Name: "fifo", PartitionUnit: fine, CreditBytes: fine},
	}
	reversed := make([]int64, layers)
	for i := range reversed {
		reversed[i] = int64(layers - i)
	}
	alternatives = append(alternatives, rankPolicy("reversed", reversed))
	for seed := int64(0); seed < 3; seed++ {
		rng := stats.NewRNG(o.Seed + seed)
		rank := make([]int64, layers)
		for i := range rank {
			rank[i] = int64(i)
		}
		for i := layers - 1; i > 0; i-- {
			j := rng.Intn(i + 1)
			rank[i], rank[j] = rank[j], rank[i]
		}
		alternatives = append(alternatives, rankPolicy(fmt.Sprintf("random%d", seed), rank))
	}

	tab := Table{
		ID:      "THM1",
		Title:   "Theorem 1 optimality and the §4.1 overhead bound (all-reduce, 2 machines)",
		Columns: []string{"case", "schedule/partition", "iter_ms", "note"},
		Metrics: map[string]float64{},
	}

	prio, err := o.run(mkCfg(ideal, core.ByteScheduler(fine, fine)))
	if err != nil {
		return Table{}, err
	}
	tab.Rows = append(tab.Rows, []string{"ideal transport", "layer priority", f1(prio.IterTime * 1e3), "Theorem 1 schedule"})
	// The alternative-order trials are independent (custom rank policies
	// bypass the engine's cache but still ride its worker pool).
	altRes := make([]runner.Result, len(alternatives))
	if err := o.parallel(len(alternatives), func(i int) error {
		res, err := o.run(mkCfg(ideal, alternatives[i]))
		if err != nil {
			return err
		}
		altRes[i] = res
		return nil
	}); err != nil {
		return Table{}, err
	}
	worstAdvantage := 0.0 // most any alternative beats priority, in ms
	for i, alt := range alternatives {
		res := altRes[i]
		adv := (prio.IterTime - res.IterTime) * 1e3
		if adv > worstAdvantage {
			worstAdvantage = adv
		}
		tab.Rows = append(tab.Rows, []string{"ideal transport", alt.Name, f1(res.IterTime * 1e3),
			fmt.Sprintf("%+.1fms vs priority", (res.IterTime-prio.IterTime)*1e3)})
	}
	tab.Metrics["best_alternative_advantage_ms"] = worstAdvantage

	// Overhead bound: measure the overhead-free fine-partition reference
	// at the real transport's bandwidth, then sweep δ on the real
	// transport.
	prof := network.RDMA()
	machines := float64(gpus / runner.DefaultGPUsPerMachine)
	theta := prof.CollectiveLaunch + 2*(machines-1)*prof.HopLatency
	bw := network.GbpsToBytes(25) * prof.Efficiency
	if cap := network.GbpsToBytes(prof.CollectiveMaxGbps); bw > cap {
		bw = cap
	}
	// The paper bounds delays 1 and 2 (partition overhead and pipeline
	// fill) but leaves delay 3 (preemption granularity) to the credit
	// discussion, so the overhead-free reference must use the same
	// partition size — isolating exactly the bounded delays.
	deltasMB := []int64{1, 4, 16}
	type refPair struct{ ref, res runner.Result }
	pairs := make([]refPair, len(deltasMB))
	if err := o.parallel(len(deltasMB)*2, func(k int) error {
		delta := deltasMB[k/2] << 20
		if k%2 == 0 {
			ref, err := o.run(mkCfg(overheadFree(prof), core.ByteScheduler(delta, delta)))
			if err != nil {
				return err
			}
			pairs[k/2].ref = ref
		} else {
			res, err := o.run(mkCfg(prof, core.ByteScheduler(delta, delta)))
			if err != nil {
				return err
			}
			pairs[k/2].res = res
		}
		return nil
	}); err != nil {
		return Table{}, err
	}
	worstRatio := 0.0
	for di, deltaMB := range deltasMB {
		delta := deltaMB << 20
		ref, res := pairs[di].ref, pairs[di].res
		nPartitions := float64(layers * (layerSize / delta))
		effDelta := delta
		if effDelta > layerSize {
			effDelta = layerSize // a partition never exceeds its tensor
		}
		bound := nPartitions*theta + theta + float64(effDelta)/bw
		gap := res.IterTime - ref.IterTime
		if ratio := gap / bound; ratio > worstRatio {
			worstRatio = ratio
		}
		tab.Rows = append(tab.Rows, []string{"real vs overhead-free transport", fmt.Sprintf("%dMB", deltaMB),
			f1(res.IterTime * 1e3),
			fmt.Sprintf("gap %.2fms <= bound %.2fms", gap*1e3, bound*1e3)})
	}
	tab.Metrics["worst_gap_over_bound"] = worstRatio
	tab.Notes = append(tab.Notes,
		"no alternative order beats layer priority under Theorem 1's assumptions,",
		"and the finite-partition overhead stays within the paper's analytical bound")
	return tab, nil
}

package experiments

import (
	"fmt"

	"bytescheduler/internal/compress"
	"bytescheduler/internal/core"
	"bytescheduler/internal/model"
	"bytescheduler/internal/network"
	"bytescheduler/internal/plugin"
	"bytescheduler/internal/runner"
	"bytescheduler/internal/tensor"
)

// The experiments in this file implement the paper's §7 future-work
// directions: dynamic (runtime) knob tuning, per-layer partition sizes, and
// co-scheduling multiple jobs in a shared cluster.

// ExtOnlineTuning demonstrates runtime auto-tuning: a single continuous run
// starts from deliberately poor parameters and converges to near the
// offline optimum while training, including PS restart-cost accounting
// (§5's checkpoint-restart, §7's dynamic tuning).
func ExtOnlineTuning(o Opts) (Table, error) {
	trials := 10
	if o.Quick {
		trials = 8
	}
	oc := runner.OnlineConfig{
		Config: runner.Config{
			Model:         model.VGG16(),
			Framework:     plugin.MXNet,
			Arch:          runner.PS,
			Transport:     network.RDMA(),
			BandwidthGbps: 100,
			GPUs:          16,
			Policy:        core.ByteScheduler(64<<20, 64<<20), // poor start
			Scheduled:     true,
			Jitter:        0.02,
			Seed:          o.Seed,
		},
		WindowIters:    4,
		Trials:         trials,
		FinalWindows:   2,
		TuneSeed:       o.Seed + 31,
		RestartPenalty: 5,
	}
	res, err := runner.RunOnlineTuned(oc)
	if err != nil {
		return Table{}, err
	}
	tab := Table{
		ID:      "EXT-ONLINE",
		Title:   "runtime auto-tuning on a live run (VGG16 PS RDMA, poor 64MB/64MB start)",
		Columns: []string{"window", "partition_MB", "credit_MB", "speed"},
		Metrics: map[string]float64{
			"first_speed":     res.FirstWindowSpeed,
			"final_speed":     res.FinalSpeed,
			"improvement_pct": speedupPct(res.FirstWindowSpeed, res.FinalSpeed),
			"restarts":        float64(res.Restarts),
			"overhead_sec":    res.TuningOverhead,
		},
	}
	for _, w := range res.Windows {
		tab.Rows = append(tab.Rows, []string{
			fmt.Sprintf("%d", w.Window), mb(w.Partition), mb(w.Credit), f0(w.Speed),
		})
	}
	tab.Notes = append(tab.Notes,
		fmt.Sprintf("converged to %s/%s MB; %d PS restarts cost %.0fs of tuning overhead",
			mb(res.BestPartition), mb(res.BestCredit), res.Restarts, res.TuningOverhead))
	return tab, nil
}

// ExtLayerwisePartition explores per-layer partition sizes (§7: "we may use
// different partition and credit sizes for different layers"): size-
// proportional partitions versus the best uniform size.
func ExtLayerwisePartition(o Opts) (Table, error) {
	base := ablationBase()
	tab := Table{
		ID:      "EXT-LAYERWISE",
		Title:   "per-layer partition sizes vs uniform (VGG16 PS RDMA)",
		Columns: []string{"partitioning", "samples/s", "iter_ms"},
		Metrics: map[string]float64{},
	}
	var uniformSpeed float64
	for _, tc := range []struct {
		name   string
		policy core.Policy
	}{
		{"uniform 2MB", core.ByteScheduler(2<<20, 16<<20)},
		{"layerwise bytes/16 in [256KB, 8MB]", core.Policy{
			Name:        "layerwise",
			CreditBytes: 16 << 20,
			Priority:    core.LayerPriority,
			PartitionFn: func(t tensor.Tensor) int64 {
				unit := t.Bytes / 16
				if unit < 256<<10 {
					unit = 256 << 10
				}
				if unit > 8<<20 {
					unit = 8 << 20
				}
				return unit
			},
		}},
	} {
		cfg := base
		cfg.Policy = tc.policy
		cfg.Scheduled = true
		res, err := o.run(cfg)
		if err != nil {
			return Table{}, err
		}
		if tc.name == "uniform 2MB" {
			uniformSpeed = res.SamplesPerSec
		} else {
			tab.Metrics["layerwise_vs_uniform_pct"] = speedupPct(uniformSpeed, res.SamplesPerSec)
		}
		tab.Rows = append(tab.Rows, []string{tc.name, f0(res.SamplesPerSec), f1(res.IterTime * 1e3)})
	}
	tab.Notes = append(tab.Notes,
		"naive size-proportional layerwise sizing loses to a well-tuned uniform size:",
		"big layers get coarse partitions exactly where preemption and load spreading",
		"matter most — consistent with the paper leaving efficient per-layer search",
		"as an open problem (§7)")
	return tab, nil
}

// ExtCompression shows that gradient compression (§8: QSGD/TernGrad-style
// quantization, sparse synchronization) composes with scheduling: it shrinks
// what the scheduler moves, the scheduler still decides the order.
func ExtCompression(o Opts) (Table, error) {
	base := ablationBase() // VGG16 PS RDMA, 16 GPUs
	tab := Table{
		ID:      "EXT-COMPRESS",
		Title:   "gradient compression x scheduling (VGG16 PS RDMA)",
		Columns: []string{"configuration", "wire_MB_per_iter", "samples/s"},
		Metrics: map[string]float64{},
	}
	run := func(label string, comp *compress.Compressor, scheduled bool) (float64, error) {
		cfg := base
		if scheduled {
			cfg = scheduledCfg(cfg, 2<<20, 16<<20)
		}
		cfg.Compression = comp
		res, err := o.run(cfg)
		if err != nil {
			return 0, err
		}
		wire := float64(cfg.Model.TotalBytes())
		if comp != nil {
			wire *= comp.Ratio()
		}
		tab.Rows = append(tab.Rows, []string{label, f0(wire / (1 << 20)), f0(res.SamplesPerSec)})
		return res.SamplesPerSec, nil
	}
	fifoPlain, err := run("FIFO", nil, false)
	if err != nil {
		return Table{}, err
	}
	bsPlain, err := run("ByteScheduler", nil, true)
	if err != nil {
		return Table{}, err
	}
	fp16 := compress.NewFP16()
	bsFP16, err := run("ByteScheduler + fp16", &fp16, true)
	if err != nil {
		return Table{}, err
	}
	int8 := compress.NewInt8()
	bsInt8, err := run("ByteScheduler + int8", &int8, true)
	if err != nil {
		return Table{}, err
	}
	topk := compress.NewTopK(0.01)
	if _, err := run("ByteScheduler + top-1%", &topk, true); err != nil {
		return Table{}, err
	}
	fifoFP16, err := run("FIFO + fp16", &fp16, false)
	if err != nil {
		return Table{}, err
	}
	tab.Metrics["fp16_over_bs_pct"] = speedupPct(bsPlain, bsFP16)
	tab.Metrics["int8_over_bs_pct"] = speedupPct(bsPlain, bsInt8)
	tab.Metrics["bs_over_fifo_at_fp16_pct"] = speedupPct(fifoFP16, bsFP16)
	tab.Metrics["bs_over_fifo_plain_pct"] = speedupPct(fifoPlain, bsPlain)
	tab.Notes = append(tab.Notes,
		"compression and scheduling stack: fp16 adds gains on top of ByteScheduler,",
		"and scheduling still helps on compressed traffic (orthogonal, as §8 argues)")
	return tab, nil
}

// ExtZooModels extends the §6.2 "other models" result to the rest of the
// zoo: BERT-base and GNMT (embedding/softmax-dominated, large gains) and
// Inception-v3 (compute-bound like ResNet50, little headroom at 100 Gbps).
func ExtZooModels(o Opts) (Table, error) {
	gpus := 32
	if o.Quick {
		gpus = 16
	}
	tab := Table{
		ID:      "EXT-ZOO",
		Title:   "extended model zoo, MXNet PS RDMA 100Gbps",
		Columns: []string{"model", "params_M", "baseline", "bytescheduler", "gpu_util", "speedup"},
		Metrics: map[string]float64{},
	}
	zoo := []func() *model.Model{model.BERTBase, model.GNMT, model.InceptionV3}
	type pair struct{ base, sched runner.Result }
	pairs := make([]pair, len(zoo))
	if err := o.parallel(len(zoo), func(i int) error {
		cfg := runner.Config{
			Model:         zoo[i](),
			Framework:     plugin.MXNet,
			Arch:          runner.PS,
			Transport:     network.RDMA(),
			BandwidthGbps: 100,
			GPUs:          gpus,
			Policy:        core.FIFO(),
		}
		base, err := o.run(cfg)
		if err != nil {
			return err
		}
		sched, err := o.run(scheduledCfg(cfg, 2<<20, 16<<20))
		if err != nil {
			return err
		}
		pairs[i] = pair{base, sched}
		return nil
	}); err != nil {
		return Table{}, err
	}
	for i, mk := range zoo {
		m := mk()
		base, sched := pairs[i].base, pairs[i].sched
		sp := speedupPct(base.SamplesPerSec, sched.SamplesPerSec)
		tab.Rows = append(tab.Rows, []string{
			m.Name, f0(float64(m.Params()) / 1e6),
			f0(base.SamplesPerSec), f0(sched.SamplesPerSec),
			fmt.Sprintf("%.0f%%->%.0f%%", base.GPUUtilization*100, sched.GPUUtilization*100),
			pct(sp),
		})
		tab.Metrics[m.Name+"_speedup_pct"] = sp
	}
	tab.Notes = append(tab.Notes,
		"GNMT's 1.1GB of embeddings/softmax make it heavily communication-bound",
		"(GPU utilization stays low even scheduled); fp32 BERT-base and",
		"Inception-v3 are compute-dense like ResNet50, with single-digit headroom")
	return tab, nil
}

// ExtCoScheduling reproduces the §7 shared-cluster scenario: two identical
// jobs contending for the same NICs, with and without communication
// scheduling.
func ExtCoScheduling(o Opts) (Table, error) {
	mk := func(policy core.Policy, scheduled bool) runner.Config {
		return runner.Config{
			Model:         model.VGG16(),
			Framework:     plugin.MXNet,
			Arch:          runner.PS,
			Transport:     network.RDMA(),
			BandwidthGbps: 100,
			GPUs:          16,
			Policy:        policy,
			Scheduled:     scheduled,
			Iterations:    10,
			Warmup:        2,
		}
	}
	solo, err := o.run(mk(core.ByteScheduler(2<<20, 16<<20), true))
	if err != nil {
		return Table{}, err
	}
	fifoPair, err := runner.RunCoScheduled([]runner.Config{
		mk(core.FIFO(), false), mk(core.FIFO(), false),
	})
	if err != nil {
		return Table{}, err
	}
	bsPair, err := runner.RunCoScheduled([]runner.Config{
		mk(core.ByteScheduler(2<<20, 16<<20), true),
		mk(core.ByteScheduler(2<<20, 16<<20), true),
	})
	if err != nil {
		return Table{}, err
	}
	fifoTotal := fifoPair[0].SamplesPerSec + fifoPair[1].SamplesPerSec
	bsTotal := bsPair[0].SamplesPerSec + bsPair[1].SamplesPerSec
	tab := Table{
		ID:      "EXT-COSCHED",
		Title:   "two VGG16 jobs sharing one fabric (PS RDMA, 16 GPUs each)",
		Columns: []string{"configuration", "job0", "job1", "aggregate"},
		Rows: [][]string{
			{"solo ByteScheduler (reference)", f0(solo.SamplesPerSec), "-", f0(solo.SamplesPerSec)},
			{"2x vanilla FIFO", f0(fifoPair[0].SamplesPerSec), f0(fifoPair[1].SamplesPerSec), f0(fifoTotal)},
			{"2x ByteScheduler", f0(bsPair[0].SamplesPerSec), f0(bsPair[1].SamplesPerSec), f0(bsTotal)},
		},
		Metrics: map[string]float64{
			"bs_over_fifo_aggregate_pct": speedupPct(fifoTotal, bsTotal),
			"contention_loss_pct":        speedupPct(solo.SamplesPerSec, bsPair[0].SamplesPerSec),
		},
		Notes: []string{
			"per-job scheduling still pays off under contention, but jobs remain oblivious",
			"to each other — the cooperative cross-job scheduler remains future work",
		},
	}
	return tab, nil
}

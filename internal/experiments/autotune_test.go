package experiments

import "testing"

// TestAutoTuneMarkedLive pins the registry contract: EXT-AUTOTUNE is
// wall-clock measurement and must be skipped by the determinism harnesses.
func TestAutoTuneMarkedLive(t *testing.T) {
	e, err := ByID("EXT-AUTOTUNE")
	if err != nil {
		t.Fatal(err)
	}
	if !e.Live() {
		t.Fatal("EXT-AUTOTUNE not marked live")
	}
}

// TestAutoTuneShape runs the closed loop end-to-end on the live PS backend
// and checks the claims EXT-AUTOTUNE exists for: the online controller
// converges near the offline-BO optimum with no restarts, then detects the
// injected bandwidth change and re-converges with at most one guarded
// rollback. The configured setup measures ~90% of the offline optimum on
// an idle machine; the ratio gates below only demand the loose floor,
// leaving the margin as headroom for noisy shared CI machines (and for the
// offline reference being itself a noisy maximum).
func TestAutoTuneShape(t *testing.T) {
	if raceDetector {
		t.Skip("wall-clock gate: race instrumentation slows compute ~10x, shrinking the injected bandwidth change's relative effect below the retune threshold")
	}
	tab := runExp(t, ExtAutoTune)
	m := tab.Metrics
	if m["offline_a_speed"] <= 0 || m["offline_b_speed"] <= 0 {
		t.Fatalf("non-positive offline reference speeds: %+v", m)
	}
	// Phase B is a strictly slower link: the offline optima must reflect
	// the injected bandwidth change, or the shaper is not on the path.
	if m["offline_b_speed"] >= m["offline_a_speed"] {
		t.Errorf("phase B offline optimum %.1f it/s not slower than phase A %.1f it/s: bandwidth change not injected",
			m["offline_b_speed"], m["offline_a_speed"])
	}
	// Convergence: the online controller's adopted config must be in the
	// offline optimum's neighborhood, both before and after the change.
	if m["converge_ratio"] < 0.55 {
		t.Errorf("phase A convergence ratio %.2f < 0.55 of offline optimum", m["converge_ratio"])
	}
	if m["reconverge_ratio"] < 0.55 {
		t.Errorf("phase B re-convergence ratio %.2f < 0.55 of offline optimum", m["reconverge_ratio"])
	}
	// Re-convergence happened, automatically, and within the guard budget.
	if m["retunes"] < 1 {
		t.Errorf("retunes = %.0f, want >= 1: controller never reacted to the bandwidth change", m["retunes"])
	}
	if m["rollbacks_post"] > 1 {
		t.Errorf("rollbacks after the change = %.0f, want <= 1 (guarded)", m["rollbacks_post"])
	}
	if m["settled_at_end"] != 1 {
		t.Errorf("controller did not settle again after the change: %+v", m)
	}
	if m["probes"] < m["retunes"]*2 {
		t.Errorf("suspiciously few probes (%.0f) for %.0f episodes", m["probes"], m["episodes"])
	}
}

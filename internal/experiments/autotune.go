package experiments

import (
	"fmt"
	"time"

	"bytescheduler/internal/autotune"
	"bytescheduler/internal/core"
	"bytescheduler/internal/network"
	"bytescheduler/internal/runner"
	"bytescheduler/internal/tune"
)

// ExtAutoTune closes the AutoByte loop on the live PS path: an online
// controller (internal/autotune) tunes (partition, credit) mid-run, with
// no restarts, against a shaped link whose bandwidth collapses partway
// through.
//
// Three measurements share one fabric model:
//
//  1. Offline references: constant-liar BO over short fixed-config runs
//     under each link phase — the restart-per-probe optimum the online
//     controller is judged against.
//  2. One continuous online run: the controller must converge near the
//     phase-A offline optimum, settle, detect the phase-B bandwidth
//     collapse (injected through the fault-fabric model layered on the
//     shaped link), re-tune, and settle again near the phase-B optimum —
//     with at most one guarded rollback after the change.
//
// Like every live experiment this is wall-clock measurement over loopback
// TCP: the convergence ratios are reported against offline optima that are
// themselves noisy maxima, so the shape test gates them loosely
// (TestAutoTuneShape), leaving margin for shared CI machines.
func ExtAutoTune(o Opts) (Table, error) {
	const workers = 2
	// A mid-size profile: 6 layers, 1.25MB per worker per iteration. The
	// shaped serial link makes the (partition, credit) landscape real:
	// per-message overhead punishes small partitions, credit gates how
	// much of the serialized wire the urgent front layers can claim.
	layers := []int64{384 << 10, 256 << 10, 256 << 10, 192 << 10, 128 << 10, 64 << 10}
	// Phase A: a fast link; phase B: per-message overhead x5, less than
	// half the byte rate, plus retransmits from the PR1 fault model — the
	// injected bandwidth change.
	phaseA := runner.LinkShape{PerMessage: 250 * time.Microsecond, Gbps: 2}
	phaseB := runner.LinkShape{
		PerMessage: 1600 * time.Microsecond,
		Gbps:       0.6,
		Faults:     network.FaultConfig{DropProb: 0.05, RetransmitDelay: 2e-3},
	}

	trials, probeIters, changeAt, totalIters := 8, 9, 52, 108
	if o.Quick {
		trials, probeIters, changeAt, totalIters = 5, 8, 34, 76
	}
	const dwell = 3

	base := runner.LiveConfig{
		Backend:        runner.LiveBackendPS,
		Workers:        workers,
		LayerBytes:     layers,
		Policy:         core.ByteScheduler(256<<10, 1<<20),
		ForwardCompute: 300 * time.Microsecond,
		Seed:           o.Seed,
	}

	// Offline reference: BO with restarts, one short fixed-config run per
	// probe, scored by median iteration speed.
	offline := func(shape runner.LinkShape, seed int64) (tune.Result, error) {
		var runErr error
		bo := tune.NewBO(tune.ParamBounds(), seed)
		res := tune.PartitionCredit(bo, func(p, c int64) float64 {
			if runErr != nil {
				return 0
			}
			p -= p % 4
			cfg := base
			cfg.Policy = core.ByteScheduler(p, c)
			cfg.Iterations, cfg.Warmup = probeIters, 2
			cfg.Shape = []runner.LinkShape{shape}
			r, err := runner.RunLive(cfg)
			if err != nil {
				runErr = err
				return 0
			}
			return 1 / medianSeconds(r.IterTimes)
		}, trials)
		return res, runErr
	}
	offA, err := offline(phaseA, o.Seed+1)
	if err != nil {
		return Table{}, fmt.Errorf("offline reference (phase A): %w", err)
	}
	offB, err := offline(phaseB, o.Seed+2)
	if err != nil {
		return Table{}, fmt.Errorf("offline reference (phase B): %w", err)
	}

	// The continuous online run across the bandwidth change.
	cfg := base
	cfg.Iterations, cfg.Warmup = totalIters, 2
	shapeB := phaseB
	shapeB.FromIter = changeAt
	cfg.Shape = []runner.LinkShape{phaseA, shapeB}
	cfg.AutoTune = &autotune.Config{
		Suggester:   "bo",
		Seed:        o.Seed + 3,
		WarmupIters: 2,
		DwellIters:  dwell,
		Trials:      trials,
		// Phase B halves throughput or worse; 0.30 leaves a wide margin on
		// both sides (no spurious retunes from ±10% window noise, no
		// missed detection of the real change).
		RetunePct: 0.30,
	}
	live, err := runner.RunLive(cfg)
	if err != nil {
		return Table{}, fmt.Errorf("online autotuned run: %w", err)
	}
	rep := live.AutoTune

	// Walk the decision log: episode-1 adoption speed, rollbacks after the
	// first retune, episode-2 adoption speed.
	var adoptA, adoptB autotune.Decision
	retuneAt, lateRollbacks := -1, 0
	for i, d := range rep.Decisions {
		switch d.Action {
		case "adopt":
			if retuneAt < 0 && adoptA.Speed == 0 {
				adoptA = d
			} else if retuneAt >= 0 {
				adoptB = d
			}
		case "retune":
			if retuneAt < 0 {
				retuneAt = i
			}
		case "rollback":
			if retuneAt >= 0 {
				lateRollbacks++
			}
		}
	}
	settledB := adoptB.Speed
	if rep.Settled && rep.SettledSpeed > 0 {
		settledB = rep.SettledSpeed
	}

	convergeRatio := adoptA.Speed / offA.Speed
	reconvergeRatio := settledB / offB.Speed

	row := func(leg string, s autotune.Setting, speed float64, note string) []string {
		return []string{leg, mb(s.Partition), mb(s.Credit), f1(speed), note}
	}
	tab := Table{
		ID: "EXT-AUTOTUNE",
		Title: fmt.Sprintf("closed-loop online (partition, credit) tuning on live PS: %d workers, bandwidth change at iter %d",
			workers, changeAt),
		Columns: []string{"leg", "part_MB", "credit_MB", "speed_it/s", "note"},
		Rows: [][]string{
			row("offline BO, phase A", autotune.Setting{Partition: offA.Partition, Credit: offA.Credit}, offA.Speed,
				fmt.Sprintf("%d restart probes", trials)),
			row("online, phase A", adoptA.Setting, adoptA.Speed,
				fmt.Sprintf("adopted, %.0f%% of offline", convergeRatio*100)),
			row("offline BO, phase B", autotune.Setting{Partition: offB.Partition, Credit: offB.Credit}, offB.Speed,
				fmt.Sprintf("%d restart probes", trials)),
			row("online, phase B", adoptB.Setting, settledB,
				fmt.Sprintf("re-converged, %.0f%% of offline", reconvergeRatio*100)),
		},
		Metrics: map[string]float64{
			"offline_a_speed":   offA.Speed,
			"online_a_speed":    adoptA.Speed,
			"offline_b_speed":   offB.Speed,
			"online_b_speed":    settledB,
			"converge_ratio":    convergeRatio,
			"reconverge_ratio":  reconvergeRatio,
			"retunes":           float64(rep.Retunes),
			"rollbacks_post":    float64(lateRollbacks),
			"rollbacks_total":   float64(rep.Rollbacks),
			"probes":            float64(rep.Probes),
			"episodes":          float64(rep.Episodes),
			"settled_at_end":    b2f(rep.Settled),
			"decision_count":    float64(len(rep.Decisions)),
			"online_iterations": float64(totalIters),
		},
		Notes: []string{
			fmt.Sprintf("controller made %d decisions over %d iterations with no restarts: %d probes, %d retune(s), %d rollback(s)",
				len(rep.Decisions), totalIters, rep.Probes, rep.Retunes, rep.Rollbacks),
			"offline references restart per probe; the online controller pays only dwell windows on the live job",
			"wall-clock over loopback TCP: ratios vary run to run, and the offline optimum is itself a noisy maximum",
		},
	}
	return tab, nil
}

// b2f renders a bool as a 0/1 metric.
func b2f(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

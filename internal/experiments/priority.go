package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"bytescheduler/internal/core"
	"bytescheduler/internal/model"
	"bytescheduler/internal/runner"
)

// ExtPriority is the priority-strategy shootout plus the cross-iteration
// pipelining measurement.
//
// The sim leg runs the model zoo (VGG16, ResNet50, Transformer) under
// identical ByteScheduler partitioning with every priority policy: layer
// order (the paper's choice), TicTac-style critical path (ranks derived
// from the engine's DAG timings — remaining transfer + forward-compute
// path to the op consuming the pulled parameter), and random (the
// ablation floor). The artifact under test is the shape claim that
// DAG-aware orders beat FIFO and random never wins.
//
// The live leg measures what priorities alone cannot show in simulation:
// cross-iteration pipelining. With pipelining off, every gradient is held
// to its pass boundary and released in rank order — the non-pipelined
// scheduled baseline (TicTac's regime). With pipelining on, the streaming
// release admits iteration i+1's urgent tensors while iteration i is
// still finishing, overlapping transfers with backward compute on both
// backends (PS split-phase and the coordinated ring). Like EXT-RING and
// EXT-FUSION this is wall clock over loopback, so legs run in interleaved
// repetitions scored by best median iteration, and Experiment.Live is
// true (determinism harnesses skip it).
func ExtPriority(o Opts) (Table, error) {
	tab := Table{
		ID:      "EXT-PRIORITY",
		Title:   "priority policies (sim zoo, samples/s) + cross-iteration pipelining (live, iter_ms)",
		Columns: []string{"leg", "config", "value", "delta_pct"},
		Metrics: map[string]float64{},
	}

	// --- sim leg: policy shootout across the model zoo ---
	models := []*model.Model{model.VGG16(), model.ResNet50(), model.Transformer()}
	policies := []core.PriorityPolicy{core.PriorityLayer, core.PriorityCriticalPath, core.PriorityRandom}
	// model x (fifo + policies) grid, index-addressed for the worker pool.
	speeds := make([]float64, len(models)*(len(policies)+1))
	stride := len(policies) + 1
	if err := o.parallel(len(speeds), func(k int) error {
		m, pi := models[k/stride], k%stride
		part, credit := calibratedParams(runner.PS, m.Name)
		cfg := ablationBase()
		cfg.Model = m
		cfg.Seed = o.Seed
		if pi > 0 {
			cfg = scheduledCfg(cfg, part, credit)
			cfg.Priority = policies[pi-1]
		}
		res, err := o.run(cfg)
		if err != nil {
			return err
		}
		speeds[k] = res.SamplesPerSec
		return nil
	}); err != nil {
		return Table{}, err
	}
	tictacMin, tictacMax := math.Inf(1), math.Inf(-1)
	for mi, m := range models {
		fifo := speeds[mi*stride]
		tab.Rows = append(tab.Rows, []string{"sim " + m.Name, "fifo", f0(fifo), "0.0"})
		for pi, p := range policies {
			v := speeds[mi*stride+1+pi]
			sp := speedupPct(fifo, v)
			tab.Rows = append(tab.Rows, []string{"sim " + m.Name, p.String(), f0(v), f1(sp)})
			tab.Metrics[strings.ToLower(m.Name)+"_"+p.String()+"_pct"] = sp
			if p == core.PriorityCriticalPath {
				tictacMin = math.Min(tictacMin, sp)
				tictacMax = math.Max(tictacMax, sp)
			}
		}
	}
	// Compute-bound models (ResNet50) hide communication entirely, so the
	// min is ~0 there by design; the max captures the communication-bound
	// headline.
	tab.Metrics["sim_tictac_min_pct"] = tictacMin
	tab.Metrics["sim_tictac_max_pct"] = tictacMax

	// --- live leg: pipelining on vs off, both backends ---
	// Uniform layers and layer-order ranks isolate the variable under
	// test — release discipline — from priority-order effects; slow
	// backward compute and a shaped link make the transfers pipelining
	// hides material on loopback. (On a rear-heavy profile the tictac
	// ranks promote the fat tail over the forward-blocking front layers,
	// which delays the next forward start and can cancel the overlap win;
	// the sim leg above is where rank-order effects are measured.)
	layers := []int64{256 << 10, 256 << 10, 256 << 10, 256 << 10, 256 << 10, 256 << 10}
	iters, warmup, reps := 10, 2, 3
	if o.Quick {
		iters, warmup, reps = 8, 2, 2
	}
	type leg struct {
		backend runner.LiveBackend
		mode    runner.PipelineMode
		iter    float64
	}
	legs := []*leg{
		{runner.LiveBackendPS, runner.PipelineOff, math.Inf(1)},
		{runner.LiveBackendPS, runner.PipelineOn, math.Inf(1)},
		{runner.LiveBackendRing, runner.PipelineOff, math.Inf(1)},
		{runner.LiveBackendRing, runner.PipelineOn, math.Inf(1)},
	}
	// Interleave repetitions (EXT-FUSION's estimator) so slow phases of a
	// shared machine hit every leg.
	for r := 0; r < reps; r++ {
		for _, l := range legs {
			workers := 2
			if l.backend == runner.LiveBackendRing {
				workers = 3
			}
			cfg := runner.LiveConfig{
				Backend:         l.backend,
				Workers:         workers,
				LayerBytes:      layers,
				Policy:          core.ByteScheduler(64<<10, 256<<10),
				Priority:        core.PriorityLayer,
				Pipeline:        l.mode,
				// A small lookahead window releases the first gradients
				// two layers into the backward pass instead of halfway
				// through it — more overlap, same agreed order.
				PipelineWindow:  2,
				Iterations:      iters,
				Warmup:          warmup,
				ForwardCompute:  200 * time.Microsecond,
				BackwardCompute: 2 * time.Millisecond,
				Shape:           []runner.LinkShape{{PerMessage: 300 * time.Microsecond, Gbps: 3.2}},
				Seed:            o.Seed,
			}
			res, err := runner.RunLive(cfg)
			if err != nil {
				return Table{}, fmt.Errorf("live %s pipeline %s: %w", l.backend, l.mode, err)
			}
			if it := medianSeconds(res.IterTimes); it < l.iter {
				l.iter = it
			}
		}
	}
	for i := 0; i < len(legs); i += 2 {
		off, on := legs[i], legs[i+1]
		name := "live " + off.backend.String()
		sp := (off.iter/on.iter - 1) * 100
		tab.Rows = append(tab.Rows,
			[]string{name, "pipeline off", f1(off.iter * 1e3), "0.0"},
			[]string{name, "pipeline on", f1(on.iter * 1e3), f1(sp)})
		key := off.backend.String()
		tab.Metrics[key+"_pipeline_speedup_pct"] = sp
		tab.Metrics[key+"_off_iter_ms"] = off.iter * 1e3
		tab.Metrics[key+"_on_iter_ms"] = on.iter * 1e3
	}
	tab.Notes = append(tab.Notes,
		"sim rows are samples/s vs the FIFO baseline; live rows are wall-clock iter_ms, pipelining on vs the pass-end (non-pipelined scheduled) baseline",
		fmt.Sprintf("live legs: best median over %d interleaved repetitions, layer ranks, coordinated streaming release on the ring", reps),
	)
	return tab, nil
}

//go:build race

package experiments

// determinismSuiteIDs names the experiments the determinism test suite
// verifies under the race detector. Running every experiment twice (serial
// and parallel, both with cold caches) is prohibitively slow with -race
// instrumentation, so this build covers a representative subset chosen to
// exercise every engine path while staying sub-second per run: the
// cheapest figure (FIG2), a sweep-grid fan-out (FIG4B), the batched-BO
// tuner path (FIG9), single-run ablations (ABL-PRIORITY, EXT-LAYERWISE),
// a mixed cacheable/reference grid (EXT-BALANCE), and the custom-priority
// uncacheable path (THM1), and the multi-job cluster scenario path
// (EXT-CLUSTER). The !race build runs the full registry (minus the
// heavyweight figures, which benchsuite -measure-serial verifies at run
// time).
func determinismSuiteIDs() []string {
	return []string{"FIG2", "FIG4B", "FIG9", "ABL-PRIORITY", "EXT-LAYERWISE", "EXT-BALANCE", "EXT-CLUSTER", "THM1"}
}

//go:build !race

package experiments

// raceDetector reports whether this test binary was built with -race.
// Wall-clock shape gates that compare live speeds against injected link
// changes are skipped under the detector: instrumentation slows compute
// by an order of magnitude, shrinking the injected change's *relative*
// effect below the thresholds the gates assert on.
const raceDetector = false

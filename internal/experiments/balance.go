package experiments

import (
	"fmt"

	"bytescheduler/internal/core"
	"bytescheduler/internal/model"
	"bytescheduler/internal/network"
	"bytescheduler/internal/plugin"
	"bytescheduler/internal/ps"
	"bytescheduler/internal/runner"
)

// ExtLoadBalance is the placement-strategy scenario backing the pluggable PS
// assigner: a transformer-like blocked model — every block contributes one
// dominant tensor, with head sizes following a shallow power law across
// blocks — is trained comm-bound on 64 GPUs / 8 PS shards at whole-tensor
// granularity, and the paper's round-robin baseline is compared against
// size-balanced greedy (LPT) and consistent hash-ring placement, in both
// synchronous and asynchronous PS modes.
//
// The claim under test is the §6.2 observation turned into a fix. Real
// architectures repeat a block template, so their tensor-size sequence is
// periodic; round-robin placement cycles with its own period, and when the
// two periods share a factor every block's heavy tensor aliases onto the
// same few servers — the hot shard's NIC then bounds cluster goodput, and
// adding servers does not help. Size-aware placement looks at bytes instead
// of positions and is immune. Partition spreading (TXT3) solves the same
// problem by shrinking the placement units; this experiment isolates the
// complementary axis — the placement algorithm — which also fixes the
// vanilla (unpartitioned) path where spreading is unavailable. A scheduled
// ByteScheduler run rides along as the reference ceiling.
func ExtLoadBalance(o Opts) (Table, error) {
	iters := 12
	if o.Quick {
		iters = 8
	}
	// 12 blocks x 4 layers: one head tensor per block (24 MB shrinking as
	// 1/b^0.2 — all safely under the runner's 32 MB big-array striping
	// bound, which would otherwise mask placement) plus three 256 KB
	// layer-norm-style tensors. The 4-layer period shares a factor with the
	// 8-server round-robin cycle, so all 12 heads land on 2 of 8 shards.
	// ~10 ms compute keeps the run comm-bound at 25 Gbps TCP.
	m := model.Blocked("Blocked12x4", 12, 4, 24<<20, 0.2, 256<<10, 0.010)
	base := runner.Config{
		Model:         m,
		Framework:     plugin.MXNet,
		Arch:          runner.PS,
		Transport:     network.TCP(),
		BandwidthGbps: 25,
		GPUs:          64,
		Policy:        core.FIFO(),
		Iterations:    iters,
	}

	strategies := []struct {
		key string
		s   ps.Strategy
	}{
		{"rr", ps.StrategyRoundRobin},
		{"lpt", ps.StrategySizeBalanced},
		{"ring", ps.StrategyHashRing},
	}

	tab := Table{
		ID:      "EXT-BALANCE",
		Title:   "PS placement strategies on a blocked power-law model (64 GPUs, 8 shards, TCP 25G, whole-tensor FIFO)",
		Columns: []string{"mode", "placement", "samples/s", "planned_imb", "observed_imb", "vs_round-robin"},
		Metrics: map[string]float64{},
	}
	modes := []struct {
		label  string
		suffix string
		async  bool
	}{
		{"sync", "", false},
		{"async", "_async", true},
	}
	// The 2×3 mode/placement grid plus the ByteScheduler reference run are
	// all independent trials: fan the 7 across the engine's pool and
	// assemble rows in the original order afterwards.
	grid := make([]runner.Result, len(modes)*len(strategies))
	var sched runner.Result
	if err := o.parallel(len(grid)+1, func(k int) error {
		if k == len(grid) {
			// Reference ceiling: ByteScheduler partitions and spreads,
			// balancing by construction regardless of placement strategy.
			res, err := o.run(scheduledCfg(base, 2<<20, 16<<20))
			if err != nil {
				return fmt.Errorf("bytescheduler: %w", err)
			}
			sched = res
			return nil
		}
		mode := modes[k/len(strategies)]
		st := strategies[k%len(strategies)]
		cfg := base
		cfg.Async = mode.async
		cfg.Placement = st.s
		res, err := o.run(cfg)
		if err != nil {
			return fmt.Errorf("%s/%v: %w", mode.label, st.s, err)
		}
		grid[k] = res
		return nil
	}); err != nil {
		return Table{}, err
	}
	var rrSync runner.Result
	for mi, mode := range modes {
		var rr runner.Result
		for i, st := range strategies {
			res := grid[mi*len(strategies)+i]
			gain := "-"
			if i == 0 {
				rr = res
				if !mode.async {
					rrSync = res
				}
			} else {
				g := speedupPct(rr.SamplesPerSec, res.SamplesPerSec)
				gain = pct(g)
				tab.Metrics[st.key+"_gain"+mode.suffix+"_pct"] = g
			}
			tab.Metrics[st.key+"_imbalance"+mode.suffix] = res.LoadImbalance
			tab.Rows = append(tab.Rows, []string{
				mode.label, st.s.String(), f0(res.SamplesPerSec),
				f1(res.PlannedImbalance), f1(res.LoadImbalance), gain,
			})
		}
	}
	schedGain := speedupPct(rrSync.SamplesPerSec, sched.SamplesPerSec)
	tab.Metrics["sched_gain_pct"] = schedGain
	tab.Rows = append(tab.Rows, []string{
		"sync", "bytescheduler (spread)", f0(sched.SamplesPerSec),
		f1(sched.PlannedImbalance), f1(sched.LoadImbalance), pct(schedGain),
	})

	tab.Notes = append(tab.Notes,
		fmt.Sprintf("round-robin aliases all 12 block heads onto 2 of 8 shards (imbalance %.1f); LPT flattens it to %.1f and recovers %.0f%% (sync) / %.0f%% (async) goodput",
			tab.Metrics["rr_imbalance"], tab.Metrics["lpt_imbalance"],
			tab.Metrics["lpt_gain_pct"], tab.Metrics["lpt_gain_async_pct"]),
		"hash-ring lands between the two: better than aliased round-robin, worse than LPT, but stable under server churn (see internal/ps tests)",
		"partition spreading (TXT3) reaches balance by shrinking placement units; LPT fixes the vanilla path where spreading is unavailable")
	return tab, nil
}

// Determinism and cache-correctness suite for the sweep-engine rewiring.
//
// The contract under test is the one benchsuite -measure-serial enforces at
// run time: for every registered experiment, executing on a parallel engine
// (4 workers, cold cache) produces Table.Metrics bitwise-identical to a
// serial engine (1 worker, cold cache) at the same seed — trial order,
// worker interleaving, and cache hits must never leak into results. A
// second set of tests checks the memoizing cache itself: a warm rerun
// replays identical metrics while recording cache hits.
//
// Under -race the suite shrinks to a representative subset of experiments
// (see determinism_ids_race_test.go); without -race it covers them all.
package experiments

import (
	"os"
	"testing"

	"bytescheduler/internal/sweep"
)

// heavyDeterminism names the experiments whose quick sizing still costs
// minutes per run: double-executing them inside go test would dominate the
// whole suite's wall clock. They are skipped unless DETERMINISM_FULL=1;
// the same serial-vs-parallel bitwise check runs over the complete
// registry — these included — via `benchsuite -measure-serial`, which the
// CI bench-smoke job executes.
var heavyDeterminism = map[string]bool{"FIG4A": true, "FIG13": true, "FIG14": true}

// determinismExperiments resolves the build-specific ID list to concrete
// experiments (nil means every registered experiment).
func determinismExperiments(t *testing.T) []Experiment {
	t.Helper()
	ids := determinismSuiteIDs()
	if ids == nil {
		return All()
	}
	var out []Experiment
	for _, id := range ids {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, e)
	}
	return out
}

// sameMetrics compares two metric maps for exact (bitwise) equality and
// reports the first divergence.
func sameMetrics(t *testing.T, label string, serial, parallel map[string]float64) {
	t.Helper()
	if len(serial) != len(parallel) {
		t.Fatalf("%s: metric count diverged: serial %d vs parallel %d", label, len(serial), len(parallel))
	}
	for k, v := range serial {
		w, ok := parallel[k]
		if !ok {
			t.Fatalf("%s: metric %q missing from parallel run", label, k)
		}
		if v != w {
			t.Fatalf("%s: metric %q diverged: serial %v vs parallel %v", label, k, v, w)
		}
	}
}

// TestParallelMatchesSerial runs each experiment twice — once on a
// 1-worker engine and once on a 4-worker engine, both with cold private
// caches — and requires bitwise-identical metrics. Subtests run in
// parallel with each other: each pair of engines is private, so the only
// shared state is the scheduler/runner code under test, which is exactly
// what the race detector should see contended.
func TestParallelMatchesSerial(t *testing.T) {
	for _, exp := range determinismExperiments(t) {
		exp := exp
		t.Run(exp.ID, func(t *testing.T) {
			if exp.Live() {
				t.Skipf("%s measures the live network stack: wall-clock metrics are not bitwise-reproducible", exp.ID)
			}
			if heavyDeterminism[exp.ID] && os.Getenv("DETERMINISM_FULL") == "" {
				t.Skipf("%s costs minutes per run; set DETERMINISM_FULL=1, or rely on benchsuite -measure-serial (CI bench-smoke) which verifies it", exp.ID)
			}
			t.Parallel()
			serial, err := exp.Run(Opts{Quick: true, Seed: 1,
				Engine: sweep.New(sweep.WithWorkers(1))})
			if err != nil {
				t.Fatal(err)
			}
			par, err := exp.Run(Opts{Quick: true, Seed: 1,
				Engine: sweep.New(sweep.WithWorkers(4))})
			if err != nil {
				t.Fatal(err)
			}
			sameMetrics(t, exp.ID, serial.Metrics, par.Metrics)
			if len(serial.Rows) != len(par.Rows) {
				t.Fatalf("%s: row count diverged: serial %d vs parallel %d",
					exp.ID, len(serial.Rows), len(par.Rows))
			}
		})
	}
}

// TestEngineCacheCorrectness reruns one experiment on a warm engine: the
// replayed metrics must be identical and the engine must report cache hits
// (the rerun is served from memo, not recomputed), while the cold first
// pass reports none of its trials as hits beyond intra-experiment reuse.
func TestEngineCacheCorrectness(t *testing.T) {
	exp, err := ByID("FIG2")
	if err != nil {
		t.Fatal(err)
	}
	eng := sweep.New(sweep.WithWorkers(2))
	cold, err := exp.Run(Opts{Quick: true, Seed: 1, Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	trialsCold, hitsCold := eng.Stats()
	if trialsCold == 0 {
		t.Fatal("experiment ran no trials through the engine")
	}
	warm, err := exp.Run(Opts{Quick: true, Seed: 1, Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	sameMetrics(t, "FIG2 warm rerun", cold.Metrics, warm.Metrics)
	trialsWarm, hitsWarm := eng.Stats()
	if hitsWarm <= hitsCold {
		t.Fatalf("warm rerun recorded no cache hits: cold %d/%d, warm %d/%d",
			trialsCold, hitsCold, trialsWarm, hitsWarm)
	}
	if got := hitsWarm - hitsCold; got != trialsWarm-trialsCold {
		t.Fatalf("warm rerun recomputed trials: %d new trials but only %d hits",
			trialsWarm-trialsCold, got)
	}
}

package experiments

import (
	"fmt"

	"bytescheduler/internal/cluster"
	"bytescheduler/internal/runner"
)

// ExtCluster is the multi-job scheduling scenario backing internal/cluster:
// hundreds of heterogeneous jobs (the model zoo plus power-law synthetics,
// millions of tensor transfers in total) arrive over a window on a shared
// cluster, and the FIFO-admission / uniform-share / round-robin baseline is
// compared against the treatment arm — backfill admission, work-conserving
// max-min bandwidth sharing, delay-aware placement (the ps placement
// strategies generalized from tensor→server to job-worker→node), and
// contention-aware credit allocation.
//
// The claim under test is that the paper's single-job machinery composes
// into a cluster scheduler: the same credit knob (§4.2) becomes a shared
// pool divided by weighted max-min with per-job tensor appetites as caps,
// the same placement reasoning becomes delay-aware worker placement, and
// the combination beats the naive baseline on tail job-completion time —
// the metric cluster operators actually page on — while also raising link
// utilization (work conservation recycles capacity demand-capped workers
// cannot absorb).
func ExtCluster(o Opts) (Table, error) {
	sc := cluster.Scenario{
		Jobs:             400,
		Nodes:            16,
		SlotsPerNode:     4,
		LinkGbps:         25,
		MaxDelayMs:       2,
		CreditPool:       512,
		ArrivalWindowSec: 120,
		Seed:             o.Seed,
	}
	if o.Quick {
		sc.Jobs = 200
		sc.ArrivalWindowSec = 60
	}

	arms := []struct {
		key, label string
		fair       bool
	}{
		{"fifo", "fifo/uniform", false},
		{"fair", "fair/delay-aware", true},
	}
	reports := make([]cluster.Report, len(arms))
	if err := o.parallel(len(arms), func(k int) error {
		s := sc
		s.Fair = arms[k].fair
		res, err := o.run(runner.Config{Cluster: &s})
		if err != nil {
			return fmt.Errorf("%s: %w", arms[k].key, err)
		}
		reports[k] = *res.Cluster
		return nil
	}); err != nil {
		return Table{}, err
	}

	tab := Table{
		ID: "EXT-CLUSTER",
		Title: fmt.Sprintf("multi-job cluster scheduling: %d heterogeneous jobs on %d nodes x%d slots (25G links)",
			sc.Jobs, sc.Nodes, sc.SlotsPerNode),
		Columns: []string{"arm", "jct_mean_s", "jct_p50_s", "jct_p95_s", "queue_mean_s", "makespan_s", "util"},
		Metrics: map[string]float64{},
	}
	for k, arm := range arms {
		r := reports[k]
		tab.Metrics[arm.key+"_jct_mean_s"] = r.JCTMeanSec
		tab.Metrics[arm.key+"_jct_p50_s"] = r.JCTP50Sec
		tab.Metrics[arm.key+"_jct_p95_s"] = r.JCTP95Sec
		tab.Metrics[arm.key+"_queue_mean_s"] = r.QueueMeanSec
		tab.Metrics[arm.key+"_makespan_s"] = r.MakespanSec
		tab.Metrics[arm.key+"_util_pct"] = r.UtilizationPct
		tab.Rows = append(tab.Rows, []string{
			arm.label, f1(r.JCTMeanSec), f1(r.JCTP50Sec), f1(r.JCTP95Sec),
			f1(r.QueueMeanSec), f1(r.MakespanSec), pct(r.UtilizationPct),
		})
	}
	base, fair := reports[0], reports[1]
	tab.Metrics["cluster_jobs"] = float64(base.Jobs)
	tab.Metrics["cluster_tensors_millions"] = float64(base.TotalTensors) / 1e6
	tab.Metrics["p95_gain_pct"] = speedupPct(1/base.JCTP95Sec, 1/fair.JCTP95Sec)
	tab.Metrics["mean_gain_pct"] = speedupPct(1/base.JCTMeanSec, 1/fair.JCTMeanSec)

	tab.Notes = append(tab.Notes,
		fmt.Sprintf("%d jobs, %.1fM tensor transfers: fair-share + delay-aware placement cuts p95 JCT %.0f%% (%.0fs -> %.0fs) and mean %.0f%%",
			base.Jobs, tab.Metrics["cluster_tensors_millions"],
			tab.Metrics["p95_gain_pct"], base.JCTP95Sec, fair.JCTP95Sec,
			tab.Metrics["mean_gain_pct"]),
		fmt.Sprintf("work-conserving max-min sharing lifts link utilization %.0f%% -> %.0f%%: capacity a demand-capped worker strands under uniform slicing flows to its link neighbors",
			base.UtilizationPct, fair.UtilizationPct),
		"backfill admission drains the queue around blocked large heads; delay-aware placement is ps.DelayAware generalized from tensor->server to job-worker->node")
	return tab, nil
}

package metrics

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestNilRegistryAndHandlesAreInert(t *testing.T) {
	var r *Registry
	c, g, h := r.Counter("c"), r.Gauge("g"), r.Histogram("h")
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil handles")
	}
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(1)
	g.Inc()
	g.Dec()
	g.SetMax(9)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil handles must read zero")
	}
	if r.Names() != nil {
		t.Fatal("nil registry Names must be nil")
	}
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
	var buf strings.Builder
	if err := r.WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil registry export: %v %q", err, buf.String())
	}
}

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d", c.Value())
	}
	if r.Counter("requests_total") != c {
		t.Fatal("same name must return same handle")
	}
	g := r.Gauge("depth")
	g.Set(7)
	g.Add(-2)
	g.Inc()
	g.Dec()
	if g.Value() != 5 {
		t.Fatalf("gauge = %d", g.Value())
	}
	g.SetMax(3) // lower: no-op
	g.SetMax(11)
	if g.Value() != 11 {
		t.Fatalf("SetMax = %d", g.Value())
	}
}

func TestHistogramObserveAndQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", 0.001, 0.01, 0.1, 1)
	for i := 0; i < 100; i++ {
		h.Observe(0.005) // second bucket
	}
	h.Observe(10) // +Inf bucket
	h.Observe(math.NaN())
	if h.Count() != 101 {
		t.Fatalf("Count = %d", h.Count())
	}
	if got := h.Sum(); math.Abs(got-10.5) > 1e-9 {
		t.Fatalf("Sum = %v", got)
	}
	s := r.Snapshot().Histograms["lat"]
	if len(s.Counts) != 5 {
		t.Fatalf("buckets = %d", len(s.Counts))
	}
	if q := s.Quantile(0.5); q < 0.001 || q > 0.01 {
		t.Fatalf("P50 = %v, want within (0.001, 0.01]", q)
	}
	if q := s.Quantile(0.999); q < 1 {
		t.Fatalf("P99.9 = %v, want tail bucket", q)
	}
	if !math.IsNaN((HistogramSnapshot{}).Quantile(0.5)) {
		t.Fatal("empty histogram quantile must be NaN")
	}
}

func TestHistogramDefaultBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("d")
	h.Observe(0.5)
	s := r.Snapshot().Histograms["d"]
	if len(s.Bounds) != len(DefBuckets()) {
		t.Fatalf("bounds = %d, want %d", len(s.Bounds), len(DefBuckets()))
	}
	if !sortedAscending(s.Bounds) {
		t.Fatalf("default bounds not ascending: %v", s.Bounds)
	}
}

func sortedAscending(xs []float64) bool {
	for i := 1; i < len(xs); i++ {
		if xs[i] <= xs[i-1] {
			return false
		}
	}
	return true
}

func TestPrometheusExport(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Add(3)
	r.Gauge("b_depth").Set(-4)
	h := r.Histogram("c_seconds", 0.5, 2)
	h.Observe(0.1)
	h.Observe(1)
	h.Observe(5)
	var buf strings.Builder
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE a_total counter\na_total 3\n",
		"# TYPE b_depth gauge\nb_depth -4\n",
		"# TYPE c_seconds histogram\n",
		`c_seconds_bucket{le="0.5"} 1`,
		`c_seconds_bucket{le="2"} 2`,
		`c_seconds_bucket{le="+Inf"} 3`,
		"c_seconds_sum 6.1",
		"c_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("export missing %q:\n%s", want, out)
		}
	}
}

func TestHandlerAndString(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits_total").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}
	var got [64]byte
	n, _ := resp.Body.Read(got[:])
	if !strings.Contains(string(got[:n]), "hits_total 1") {
		t.Fatalf("handler body: %q", got[:n])
	}
	// String() is valid JSON (expvar.Var contract).
	var v map[string]any
	if err := json.Unmarshal([]byte(r.String()), &v); err != nil {
		t.Fatalf("String() not JSON: %v", err)
	}
}

// TestRegistryConcurrent hammers every metric type from many goroutines
// while snapshots and exports run; run under -race.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const goroutines, iters = 8, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Counter("c").Inc()
				r.Gauge("g").Add(1)
				r.Gauge("hw").SetMax(int64(i))
				r.Histogram("h").Observe(float64(i) * 1e-4)
				if i%64 == 0 {
					_ = r.Snapshot()
					_ = r.Names()
					var sink strings.Builder
					_ = r.WritePrometheus(&sink)
				}
			}
		}(g)
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != goroutines*iters {
		t.Fatalf("counter = %d, want %d", got, goroutines*iters)
	}
	if got := r.Gauge("g").Value(); got != goroutines*iters {
		t.Fatalf("gauge = %d, want %d", got, goroutines*iters)
	}
	h := r.Histogram("h")
	if h.Count() != goroutines*iters {
		t.Fatalf("histogram count = %d", h.Count())
	}
	// The CAS-updated sum must equal the exact arithmetic series total.
	want := float64(goroutines) * float64(iters-1) * float64(iters) / 2 * 1e-4
	if math.Abs(h.Sum()-want) > 1e-6 {
		t.Fatalf("histogram sum = %v, want %v", h.Sum(), want)
	}
}

package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as single samples, histograms
// as cumulative _bucket/_sum/_count series. Metric names are expected to
// already be Prometheus-safe (snake_case); this package's own emitters
// follow that convention.
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, s.Counters[n]); err != nil {
			return err
		}
	}
	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", n, n, s.Gauges[n]); err != nil {
			return err
		}
	}
	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", n); err != nil {
			return err
		}
		var cum uint64
		for i, c := range h.Counts {
			cum += c
			le := "+Inf"
			if i < len(h.Bounds) {
				le = formatBound(h.Bounds[i])
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", n, le, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", n, h.Sum, n, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// formatBound renders a bucket bound without float noise.
func formatBound(b float64) string {
	if b == math.Trunc(b) && math.Abs(b) < 1e15 {
		return strconv.FormatFloat(b, 'f', -1, 64)
	}
	return strconv.FormatFloat(b, 'g', -1, 64)
}

// String renders the snapshot as JSON, satisfying the expvar.Var interface
// so a registry can be published with expvar.Publish.
func (r *Registry) String() string {
	out, err := json.Marshal(r.Snapshot())
	if err != nil {
		return "{}"
	}
	return string(out)
}

// Handler returns an http.Handler serving the Prometheus text format —
// mount it at /metrics next to net/http/pprof.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w) //nolint:errcheck // best-effort over HTTP
	})
}

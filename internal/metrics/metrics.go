// Package metrics is a lightweight, allocation-conscious metrics registry
// for the live scheduler path: counters, gauges, and fixed-bucket
// histograms, all updated with atomic operations so the hot path never
// takes a lock or allocates.
//
// The registry exists because the live half of the repository
// (core.AsyncScheduler driving internal/netps over real sockets) is
// otherwise a black box: retries, dedup hits, credit occupancy, and queue
// depths are exactly where scheduling bugs hide, and the auto-tuner needs
// live timing signals (§4.3) to search partition/credit sizes. The same
// registry instruments simulated runs, so sim and live runs are directly
// comparable.
//
// Handles are nil-safe: a nil *Registry hands out nil *Counter / *Gauge /
// *Histogram handles whose methods are no-ops, so instrumented code pays a
// single predictable branch when observability is disabled and needs no
// conditional wiring.
package metrics

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing uint64 metric.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one. No-op on a nil counter.
func (c *Counter) Inc() { c.Add(1) }

// Add increments the counter by n. No-op on a nil counter.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count; 0 for a nil counter.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous int64 metric (queue depth, in-flight bytes,
// credit occupancy).
type Gauge struct {
	v atomic.Int64
}

// Set stores v. No-op on a nil gauge.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add increments the gauge by delta (negative to decrement). No-op on a
// nil gauge.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// SetMax raises the gauge to v if v is larger (high-water marks). No-op on
// a nil gauge.
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value; 0 for a nil gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket cumulative-style histogram. Bucket
// boundaries are immutable after creation; observation is a binary search
// plus two atomic adds — no locks, no allocation.
type Histogram struct {
	bounds []float64 // upper bounds, ascending; implicit +Inf tail bucket
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// DefBuckets covers 1 µs to ~100 s in quarter-decade steps — wide enough
// for both wall-clock request latencies and simulated virtual-time spans.
func DefBuckets() []float64 {
	var b []float64
	for _, base := range []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10} {
		b = append(b, base, 2.5*base, 5*base)
	}
	return append(b, 100)
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Uint64, len(bs)+1)}
}

// Observe records one value. No-op on a nil histogram; NaN is dropped.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	// Binary search for the first bound >= v; the tail bucket is +Inf.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations; 0 for a nil histogram.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations; 0 for a nil histogram.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// snapshot copies the histogram state.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    h.Sum(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// HistogramSnapshot is a point-in-time copy of a histogram. Counts has one
// entry per bound plus a final +Inf bucket.
type HistogramSnapshot struct {
	Bounds []float64
	Counts []uint64
	Count  uint64
	Sum    float64
}

// Quantile returns an estimate of the q-th quantile (0..1) by linear
// interpolation within the owning bucket; NaN when empty.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		next := cum + float64(c)
		if next >= rank && c > 0 {
			lo := 0.0
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			hi := lo
			if i < len(s.Bounds) {
				hi = s.Bounds[i]
			}
			frac := 0.0
			if c > 0 {
				frac = (rank - cum) / float64(c)
			}
			return lo + (hi-lo)*frac
		}
		cum = next
	}
	if len(s.Bounds) > 0 {
		return s.Bounds[len(s.Bounds)-1]
	}
	return math.NaN()
}

// Registry owns named metrics. Lookup takes a read lock; the returned
// handles are lock-free, so instrumented code resolves its handles once and
// then updates them on the hot path.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) handle.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. A nil registry
// returns a nil (no-op) handle.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds on first use (DefBuckets when none are given). Bounds are
// ignored if the histogram already exists. A nil registry returns a nil
// (no-op) handle.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.histograms[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.histograms[name]; h == nil {
		if len(bounds) == 0 {
			bounds = DefBuckets()
		}
		h = newHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every metric in a registry.
type Snapshot struct {
	// When is the capture time.
	When time.Time
	// Counters, Gauges and Histograms map metric names to values.
	Counters   map[string]uint64
	Gauges     map[string]int64
	Histograms map[string]HistogramSnapshot
}

// Snapshot captures every metric. Safe to call concurrently with updates;
// each metric is read atomically (the snapshot as a whole is not a
// consistent cut, which counters and gauges do not need).
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		When:       time.Now(),
		Counters:   map[string]uint64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// Names returns every registered metric name, sorted.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.histograms))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

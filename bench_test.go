// Benchmarks regenerating every table and figure of the paper's evaluation
// (one Benchmark per experiment; see DESIGN.md's per-experiment index), the
// ablations of ByteScheduler's design choices, and micro-benchmarks of the
// core building blocks.
//
// Run with:
//
//	go test -bench=. -benchmem
//
// Each figure benchmark executes the full (quick-sized) experiment per
// iteration and reports its headline metrics; cmd/benchsuite prints the
// complete row/series tables.
package bytescheduler_test

import (
	"testing"

	"bytescheduler/internal/core"
	"bytescheduler/internal/experiments"
	"bytescheduler/internal/model"
	"bytescheduler/internal/network"
	"bytescheduler/internal/plugin"
	"bytescheduler/internal/runner"
	"bytescheduler/internal/sim"
	"bytescheduler/internal/sweep"
	"bytescheduler/internal/tensor"
	"bytescheduler/internal/tune"
)

// benchExperiment runs one registered experiment per iteration and reports
// the selected metrics. Every iteration gets a fresh trial engine with a
// cold cache, so the reported time is the real cost of regenerating the
// artifact (with GOMAXPROCS-wide trial parallelism), not a cache replay.
func benchExperiment(b *testing.B, id string, metrics ...string) {
	b.Helper()
	exp, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	var last experiments.Table
	for i := 0; i < b.N; i++ {
		tab, err := exp.Run(experiments.Opts{Quick: true, Seed: 1, Engine: sweep.New()})
		if err != nil {
			b.Fatal(err)
		}
		last = tab
	}
	for _, m := range metrics {
		v, ok := last.Metrics[m]
		if !ok {
			b.Fatalf("experiment %s has no metric %q (have %v)", id, m, last.Metrics)
		}
		b.ReportMetric(v, m)
	}
}

// --- one bench per paper artifact (Figures 2, 4, 9–14; Table 1; §6.2) ---

func BenchmarkFig02Contrived(b *testing.B) {
	benchExperiment(b, "FIG2", "speedup_pct")
}

func BenchmarkFig04aPartitionSweep(b *testing.B) {
	benchExperiment(b, "FIG4A", "spread_1g", "spread_10g")
}

func BenchmarkFig04bCreditSweep(b *testing.B) {
	benchExperiment(b, "FIG4B", "spread_1g", "spread_10g")
}

func BenchmarkFig09BOPosterior(b *testing.B) {
	benchExperiment(b, "FIG9", "best_credit_mb", "best_speed")
}

func BenchmarkFig10VGG16(b *testing.B) {
	benchExperiment(b, "FIG10", "speedup_min_pct", "speedup_max_pct", "bs_over_p3_min_pct")
}

func BenchmarkFig11ResNet50(b *testing.B) {
	benchExperiment(b, "FIG11", "speedup_min_pct", "speedup_max_pct")
}

func BenchmarkFig12Transformer(b *testing.B) {
	benchExperiment(b, "FIG12", "speedup_min_pct", "speedup_max_pct")
}

func BenchmarkFig13Bandwidth(b *testing.B) {
	benchExperiment(b, "FIG13",
		"ResNet50_PS_10g_speedup", "ResNet50_PS_100g_speedup")
}

func BenchmarkFig14SearchCost(b *testing.B) {
	benchExperiment(b, "FIG14",
		"bo_mean_trials", "sgd_mean_trials", "random_mean_trials", "grid_mean_trials")
}

func BenchmarkTab01BestConfig(b *testing.B) {
	benchExperiment(b, "TAB1",
		"VGG16_PS_partition_mb", "VGG16_NCCL_partition_mb")
}

func BenchmarkTxtOtherModels(b *testing.B) {
	benchExperiment(b, "TXT1", "AlexNet_speedup_pct", "VGG19_speedup_pct")
}

func BenchmarkTxtLoadBalance(b *testing.B) {
	benchExperiment(b, "TXT3", "speedup_pct", "baseline_imbalance", "sched_imbalance")
}

// --- ablations of the design choices ---

func BenchmarkAblationCredit(b *testing.B) {
	benchExperiment(b, "ABL-CREDIT", "window_over_stopandwait_pct")
}

func BenchmarkAblationPartition(b *testing.B) {
	benchExperiment(b, "ABL-PARTITION", "partitioning_gain_pct", "priority_only_gain_pct")
}

func BenchmarkAblationPriority(b *testing.B) {
	benchExperiment(b, "ABL-PRIORITY", "priority_gain_pct")
}

func BenchmarkAblationBarrier(b *testing.B) {
	benchExperiment(b, "ABL-BARRIER", "crossing_gain_pct", "full_gain_pct")
}

func BenchmarkAblationAsyncPS(b *testing.B) {
	benchExperiment(b, "ABL-ASYNC", "sync_speedup_pct", "async_speedup_pct")
}

func BenchmarkAblationCollective(b *testing.B) {
	benchExperiment(b, "ABL-COLLECTIVE", "hd_vs_ring_small_pct", "tree_vs_ring_large_pct")
}

// --- the paper's §7 future-work extensions ---

func BenchmarkExtOnlineTuning(b *testing.B) {
	benchExperiment(b, "EXT-ONLINE", "improvement_pct", "restarts")
}

func BenchmarkExtLayerwisePartition(b *testing.B) {
	benchExperiment(b, "EXT-LAYERWISE", "layerwise_vs_uniform_pct")
}

func BenchmarkExtCoScheduling(b *testing.B) {
	benchExperiment(b, "EXT-COSCHED", "bs_over_fifo_aggregate_pct", "contention_loss_pct")
}

func BenchmarkExtCompression(b *testing.B) {
	benchExperiment(b, "EXT-COMPRESS", "fp16_over_bs_pct", "bs_over_fifo_at_fp16_pct")
}

func BenchmarkThm01Optimality(b *testing.B) {
	benchExperiment(b, "THM1", "best_alternative_advantage_ms", "worst_gap_over_bound")
}

// --- micro-benchmarks of the building blocks ---

func BenchmarkSimEngineEvents(b *testing.B) {
	eng := sim.New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng.Schedule(1, func() {})
		eng.Step()
	}
}

func BenchmarkSchedulerEnqueueDispatch(b *testing.B) {
	s := core.New(core.ByteScheduler(64<<10, 1<<20))
	start := func(sub tensor.Sub, done func()) { done() }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		task := &core.Task{
			Tensor: tensor.Tensor{Layer: i % 16, Name: "w", Bytes: 256 << 10},
			Start:  start,
		}
		s.Enqueue(task)
		s.NotifyReady(task)
	}
}

func BenchmarkFabricTransfers(b *testing.B) {
	eng := sim.New()
	fab := network.NewFabric(eng, 8, 100, network.RDMA())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fab.Send(&network.Transfer{Src: i % 4, Dst: 4 + i%4, Bytes: 1 << 20})
		for eng.Pending() > 32 {
			eng.Step()
		}
	}
	eng.Run()
}

func BenchmarkGPFitPredict(b *testing.B) {
	gp := tune.NewGP()
	xs := make([][]float64, 24)
	ys := make([]float64, len(xs))
	for i := range xs {
		f := float64(i) / float64(len(xs))
		xs[i] = []float64{f, 1 - f}
		ys[i] = f * (1 - f)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := gp.Fit(xs, ys); err != nil {
			b.Fatal(err)
		}
		gp.Predict([]float64{0.3, 0.7})
	}
}

func BenchmarkFullTrainingRun(b *testing.B) {
	// One complete simulated VGG16 PS RDMA run per iteration: the cost of
	// a single auto-tuning trial.
	cfg := runner.Config{
		Model:         model.VGG16(),
		Framework:     plugin.MXNet,
		Arch:          runner.PS,
		Transport:     network.RDMA(),
		BandwidthGbps: 100,
		GPUs:          16,
		Policy:        core.ByteScheduler(2<<20, 16<<20),
		Scheduled:     true,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := runner.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.SamplesPerSec <= 0 {
			b.Fatal("degenerate run")
		}
	}
}

package bytescheduler

import (
	"bytescheduler/internal/core"
	"bytescheduler/internal/tensor"
)

// SubTask is one partition of a scheduled tensor: the byte range
// [Offset, Offset+Bytes) of the parent, partition Index of Count.
type SubTask struct {
	// Layer and TensorName identify the parent tensor.
	Layer      int
	TensorName string
	// Index / Count locate the partition within the parent.
	Index, Count int
	// Offset and Bytes delimit the partition within the parent buffer.
	Offset, Bytes int64
}

// CommTask is the unified communication abstraction: one tensor to be
// synchronized (pushed+pulled, or all-reduced — the Start function decides).
type CommTask struct {
	// Layer is the 0-based DNN layer index from the input; it determines
	// priority under the ByteScheduler policy.
	Layer int
	// Name identifies the tensor within the layer.
	Name string
	// Bytes is the tensor size.
	Bytes int64
	// Start launches one partition on the underlying communication stack.
	// It may block; it runs on its own goroutine. done must be called
	// exactly once when the partition's communication has completed.
	// Exactly one of Start and StartErr must be set.
	Start func(sub SubTask, done func())
	// StartErr is the failure-aware variant of Start: the substrate reports
	// the partition outcome through done(err). A non-nil error returns the
	// partition's credit and requeues it, up to the policy's retry budget
	// (WithMaxRetries); after the budget is exhausted the task completes
	// with Err() set. Use this with fallible transports such as netps.
	StartErr func(sub SubTask, done func(error))
	// OnFinished, if non-nil, fires once when every partition has
	// completed (successfully or after exhausting retries; check Err).
	OnFinished func()
	// OnSubStart, if non-nil, fires as each partition is released to Start
	// — on the partition's goroutine, without the scheduler lock. Use it
	// (with OnSubFinish) to bracket per-partition spans on an external
	// tracer or to log release order.
	OnSubStart func(sub SubTask)
	// OnSubFinish, if non-nil, fires when a partition's done callback runs,
	// with the error the substrate reported (nil for Start-based tasks and
	// successes). It fires once per attempt: a retried partition reports
	// each failed attempt before its eventual outcome.
	OnSubFinish func(sub SubTask, err error)

	inner *core.Task
}

// Err returns the first partition failure that exhausted the retry budget,
// or nil. Meaningful once OnFinished has fired (or after Shutdown).
func (t *CommTask) Err() error {
	if t.inner == nil {
		return nil
	}
	return t.inner.Err()
}

// Scheduler is the live, goroutine-safe ByteScheduler Core for embedding in
// real communication stacks: wrap each tensor as a CommTask, Enqueue it
// when the framework posts the communication operation, and NotifyReady
// when the tensor's data is available. The scheduler partitions tasks and
// releases partitions to Start in priority order under credit-based
// preemption.
type Scheduler struct {
	async *core.AsyncScheduler
}

// NewScheduler returns a live scheduler for the given policy.
func NewScheduler(p Policy) *Scheduler {
	return &Scheduler{async: core.NewAsync(p.p)}
}

// Enqueue registers a CommTask (the framework has posted the communication
// operation; the tensor may not be computed yet).
func (s *Scheduler) Enqueue(t *CommTask) error {
	if t.inner != nil {
		return errEnqueuedTwice(t.Name)
	}
	inner := &core.Task{
		Tensor:     tensor.Tensor{Layer: t.Layer, Name: t.Name, Bytes: t.Bytes},
		OnFinished: t.OnFinished,
	}
	onStart, onFinish := t.OnSubStart, t.OnSubFinish
	if start := t.Start; start != nil {
		inner.Start = func(sub tensor.Sub, done func()) {
			st := subTask(sub)
			if onStart != nil {
				onStart(st)
			}
			if onFinish == nil {
				start(st, done)
				return
			}
			start(st, func() {
				onFinish(st, nil)
				done()
			})
		}
	}
	if start := t.StartErr; start != nil {
		inner.StartErr = func(sub tensor.Sub, done func(error)) {
			st := subTask(sub)
			if onStart != nil {
				onStart(st)
			}
			if onFinish == nil {
				start(st, done)
				return
			}
			start(st, func(err error) {
				onFinish(st, err)
				done(err)
			})
		}
	}
	if err := s.async.Enqueue(inner); err != nil {
		return err
	}
	t.inner = inner
	return nil
}

func subTask(sub tensor.Sub) SubTask {
	return SubTask{
		Layer:      sub.Parent.Layer,
		TensorName: sub.Parent.Name,
		Index:      sub.Index,
		Count:      sub.Count,
		Offset:     sub.Offset,
		Bytes:      sub.Bytes,
	}
}

// NotifyReady marks the task's tensor as computed and eligible for
// transmission.
func (s *Scheduler) NotifyReady(t *CommTask) error {
	if t.inner == nil {
		return errNotEnqueued(t.Name)
	}
	return s.async.NotifyReady(t.inner)
}

// Instrument attaches a metrics registry: the scheduler publishes credit
// occupancy, queue depth, in-flight partitions/bytes gauges and
// start/finish/retry/failure/preemption counters under core_* names, plus a
// core_partition_seconds latency histogram. A nil Metrics (or nil receiver
// argument) detaches. Safe to call between turns of work.
func (s *Scheduler) Instrument(m *Metrics) { s.async.Instrument(m.registry()) }

// SetTrace attaches a wall-clock trace recorder: every partition becomes a
// span named "tensor[i/n]" on lane "core/L<layer>", start-to-done. A nil
// recorder detaches.
func (s *Scheduler) SetTrace(t *TraceRecorder) { s.async.SetTracer(t.wallTracer()) }

// SetFlushHook installs fn to run at the end of every scheduling pass that
// released at least one partition — the scheduler's signal that no further
// release is imminent (queue drained or credit blocked). A transport that
// coalesces sub-partition messages uses this as its flush point: pair a
// netps.Batcher with the scheduler by pushing partitions through
// Batcher.Push inside CommTask.StartErr and installing
// SetFlushHook(batcher.FlushAsync), so batches amortize the per-message
// overhead without waiting out the batch deadline. fn runs under the
// scheduler's lock: it must not call back into the scheduler and must not
// block on I/O (FlushAsync is safe; Flush is not). Passing nil detaches.
func (s *Scheduler) SetFlushHook(fn func()) { s.async.SetFlushHook(fn) }

// Drained reports whether nothing is queued or in flight.
func (s *Scheduler) Drained() bool { return s.async.Drained() }

// Shutdown stops accepting work and waits for in-flight transmissions.
func (s *Scheduler) Shutdown() { s.async.Shutdown() }

// SchedulerStats are live scheduler counters.
type SchedulerStats struct {
	// TasksEnqueued, SubsStarted, SubsFinished, Preemptions mirror the
	// core counters; see the package documentation.
	TasksEnqueued, SubsStarted, SubsFinished, Preemptions uint64
	// Retries counts partitions requeued after a reported failure;
	// Failures counts partitions that exhausted the retry budget. At
	// quiescence SubsStarted == SubsFinished + Failures + Retries.
	Retries, Failures uint64
}

// Stats snapshots the counters.
func (s *Scheduler) Stats() SchedulerStats {
	st := s.async.Stats()
	return SchedulerStats{
		TasksEnqueued: st.TasksEnqueued,
		SubsStarted:   st.SubsStarted,
		SubsFinished:  st.SubsFinished,
		Preemptions:   st.Preemptions,
		Retries:       st.Retries,
		Failures:      st.Failures,
	}
}

type taskError struct {
	name string
	what string
}

func (e taskError) Error() string {
	return "bytescheduler: task " + e.name + " " + e.what
}

func errEnqueuedTwice(name string) error { return taskError{name, "enqueued twice"} }
func errNotEnqueued(name string) error   { return taskError{name, "not enqueued"} }

GO ?= go
STATICCHECK ?= staticcheck

.PHONY: build vet staticcheck test race verify bench

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# staticcheck runs honnef.co/go/tools if it is installed; locally it is
# optional (skipped with a notice), but CI installs it and fails on
# findings.
staticcheck:
	@if command -v $(STATICCHECK) >/dev/null 2>&1; then \
		$(STATICCHECK) ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# verify is the CI gate: everything must build, pass vet + staticcheck, and
# pass the full test suite with the race detector on.
verify: build vet staticcheck race

bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

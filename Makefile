GO ?= go
STATICCHECK ?= staticcheck
FUZZTIME ?= 20s

.PHONY: build vet staticcheck test race fuzz docs verify bench bench-json bench-ps bench-priority bench-cluster

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# staticcheck runs honnef.co/go/tools if it is installed; locally it is
# optional (skipped with a notice), but CI installs it and fails on
# findings.
staticcheck:
	@if command -v $(STATICCHECK) >/dev/null 2>&1; then \
		$(STATICCHECK) ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# fuzz runs a short smoke of every fuzz target (wire-protocol decoders:
# arbitrary bytes may error but must never panic or over-allocate). Go
# accepts one -fuzz target per invocation, so each runs separately for
# $(FUZZTIME). The committed corpora under testdata/fuzz are replayed by
# plain `go test` regardless; this target searches for new inputs.
fuzz:
	$(GO) test ./internal/netps -run '^$$' -fuzz '^FuzzDecodeMessage$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/netps -run '^$$' -fuzz '^FuzzDecodeBatch$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/netar -run '^$$' -fuzz '^FuzzDecodeFrame$$' -fuzztime $(FUZZTIME)

# docs validates the documentation set: vet keeps the package docs
# compiling with the code they describe, checklinks fails on any relative
# markdown link or heading anchor whose target moved or was renamed, and
# checkdocs requires a doc comment on every exported symbol of the
# operator-facing packages.
docs: vet
	sh scripts/checklinks.sh
	sh scripts/checkdocs.sh

# verify is the CI gate: everything must build, pass vet + staticcheck,
# pass the full test suite with the race detector on (./... includes the
# live netps/netar transports and the runner's live harness), survive a
# fuzz smoke on every wire decoder, and have intact docs.
verify: build vet staticcheck race fuzz docs

bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

# bench-json regenerates the committed perf snapshot (BENCH_PR4.json): the
# full quick suite on the parallel sweep engine, plus a serial reference
# pass (-measure-serial) that both measures the parallel speedup and
# verifies the parallel metrics are bitwise-identical to a serial run.
# The snapshot records cores/workers/wall-clock/cache stats, so numbers
# from different machines stay interpretable.
bench-json:
	$(GO) run ./cmd/benchsuite -run all -measure-serial -json BENCH_PR4.json

# bench-priority regenerates the committed priority/pipelining snapshot
# (BENCH_PR9.json): the EXT-PRIORITY shootout — priority policies across
# the sim model zoo, plus cross-iteration pipelining on vs the pass-end
# baseline on both live backends, recorded as experiment metrics
# (ps_pipeline_speedup_pct / ring_pipeline_speedup_pct).
bench-priority:
	$(GO) run ./cmd/benchsuite -run EXT-PRIORITY -json BENCH_PR9.json

# bench-ps regenerates the committed netps server macro-benchmark
# (BENCH_PR6.json): one complete push+pull cycle per op at 64/256/1k
# simulated clients, sharded vs. the single-lock seed shape (one lock
# domain plus the per-push dedup-table rescan), plus one real-TCP tier
# through the connection multiplexer + handler pool that records the
# server goroutine count — the evidence that 1k clients cost ~pool-size
# goroutines.
bench-ps:
	$(GO) run ./cmd/benchsuite -ps-bench -json BENCH_PR6.json

# bench-cluster regenerates the committed multi-job scheduling snapshot
# (BENCH_PR10.json): EXT-CLUSTER at full scale — 400 heterogeneous jobs,
# millions of tensor transfers — comparing FIFO/uniform admission and
# sharing against fair-share + delay-aware placement, with a serial
# reference pass verifying the parallel run is bitwise-identical.
bench-cluster:
	$(GO) run ./cmd/benchsuite -run EXT-CLUSTER -full -measure-serial -json BENCH_PR10.json

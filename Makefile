GO ?= go
STATICCHECK ?= staticcheck

.PHONY: build vet staticcheck test race docs verify bench bench-json

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# staticcheck runs honnef.co/go/tools if it is installed; locally it is
# optional (skipped with a notice), but CI installs it and fails on
# findings.
staticcheck:
	@if command -v $(STATICCHECK) >/dev/null 2>&1; then \
		$(STATICCHECK) ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# docs validates the documentation set: vet keeps the package docs
# compiling with the code they describe, and checklinks fails on any
# relative markdown link whose target moved or was deleted.
docs: vet
	sh scripts/checklinks.sh

# verify is the CI gate: everything must build, pass vet + staticcheck,
# pass the full test suite with the race detector on, and have intact docs.
verify: build vet staticcheck race docs

bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

# bench-json regenerates the committed perf snapshot (BENCH_PR4.json): the
# full quick suite on the parallel sweep engine, plus a serial reference
# pass (-measure-serial) that both measures the parallel speedup and
# verifies the parallel metrics are bitwise-identical to a serial run.
# The snapshot records cores/workers/wall-clock/cache stats, so numbers
# from different machines stay interpretable.
bench-json:
	$(GO) run ./cmd/benchsuite -run all -measure-serial -json BENCH_PR4.json

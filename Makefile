GO ?= go

.PHONY: build vet test race verify bench

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# verify is the CI gate: everything must build, pass vet, and pass the full
# test suite with the race detector on.
verify: build vet race

bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

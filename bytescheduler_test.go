package bytescheduler_test

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	bs "bytescheduler"
)

func vggExperiment(policy bs.Policy) bs.Experiment {
	return bs.Experiment{
		Model:         "VGG16",
		Framework:     bs.MXNet,
		Arch:          bs.PS,
		Transport:     bs.RDMA,
		BandwidthGbps: 100,
		GPUs:          16,
		Policy:        policy,
	}
}

func TestRunBaselineAndScheduled(t *testing.T) {
	base, err := bs.Run(vggExperiment(bs.Vanilla()))
	if err != nil {
		t.Fatal(err)
	}
	sched, err := bs.Run(vggExperiment(bs.WithPartitionCredit(2<<20, 8<<20)))
	if err != nil {
		t.Fatal(err)
	}
	if sp := bs.Speedup(base, sched); sp < 50 {
		t.Fatalf("speedup = %.1f%%, want large for VGG16 PS RDMA", sp)
	}
	if base.SampleUnit != "images" {
		t.Fatalf("SampleUnit = %q", base.SampleUnit)
	}
	linear, err := bs.Linear(vggExperiment(bs.Vanilla()))
	if err != nil {
		t.Fatal(err)
	}
	if sched.SamplesPerSec > linear*1.02 {
		t.Fatalf("scheduled %.0f exceeds linear %.0f", sched.SamplesPerSec, linear)
	}
}

func TestRunUnknownModel(t *testing.T) {
	e := vggExperiment(bs.Vanilla())
	e.Model = "LeNet-Mystery"
	if _, err := bs.Run(e); err == nil {
		t.Fatal("unknown model accepted")
	}
	if _, err := bs.Linear(e); err == nil {
		t.Fatal("Linear accepted unknown model")
	}
	if _, err := bs.Tune(e, 3, 1); err == nil {
		t.Fatal("Tune accepted unknown model")
	}
}

func TestPolicies(t *testing.T) {
	if bs.Vanilla().Name() != "fifo" ||
		bs.P3().Name() != "p3" ||
		bs.TicTac().Name() != "tictac" ||
		bs.WithPartitionCredit(1, 1).Name() != "bytescheduler" {
		t.Fatal("policy names wrong")
	}
}

func TestEnumStrings(t *testing.T) {
	if bs.TCP.String() != "TCP" || bs.RDMA.String() != "RDMA" {
		t.Fatal("transport strings")
	}
	if bs.PS.String() != "PS" || bs.AllReduce.String() != "NCCL" {
		t.Fatal("arch strings")
	}
	if bs.MXNet.String() != "MXNet" || bs.TensorFlow.String() != "TensorFlow" || bs.PyTorch.String() != "PyTorch" {
		t.Fatal("framework strings")
	}
}

func TestModelsAndInfo(t *testing.T) {
	names := bs.Models()
	if len(names) < 5 {
		t.Fatalf("Models() = %v", names)
	}
	info, err := bs.Info("VGG16")
	if err != nil {
		t.Fatal(err)
	}
	if info.Layers != 16 || info.Params < 100e6 || info.SampleUnit != "images" {
		t.Fatalf("Info = %+v", info)
	}
	if _, err := bs.Info("nope"); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestTuneSmall(t *testing.T) {
	e := vggExperiment(bs.Vanilla())
	e.GPUs = 8
	res, err := bs.Tune(e, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trials != 6 || res.Partition <= 0 || res.Credit <= 0 || res.SamplesPerSec <= 0 {
		t.Fatalf("Tune = %+v", res)
	}
	// The tuned result must beat the untuned baseline.
	base, err := bs.Run(e)
	if err != nil {
		t.Fatal(err)
	}
	if res.SamplesPerSec <= base.SamplesPerSec {
		t.Fatalf("tuned %.0f not faster than baseline %.0f", res.SamplesPerSec, base.SamplesPerSec)
	}
}

func TestCollectiveAndCompressionOptions(t *testing.T) {
	e := bs.Experiment{
		Model:         "VGG16",
		Framework:     bs.MXNet,
		Arch:          bs.AllReduce,
		Transport:     bs.RDMA,
		BandwidthGbps: 100,
		GPUs:          16,
		Policy:        bs.WithPartitionCredit(64<<20, 160<<20),
	}
	for _, algo := range []string{"", "ring", "hd", "tree"} {
		e.Collective = algo
		if _, err := bs.Run(e); err != nil {
			t.Errorf("collective %q: %v", algo, err)
		}
	}
	e.Collective = "butterfly"
	if _, err := bs.Run(e); err == nil {
		t.Error("unknown collective accepted")
	}
	e.Collective = ""

	plain, err := bs.Run(e)
	if err != nil {
		t.Fatal(err)
	}
	for _, comp := range []string{"fp16", "int8", "topk:0.01"} {
		e.Compression = comp
		res, err := bs.Run(e)
		if err != nil {
			t.Fatalf("compression %q: %v", comp, err)
		}
		if res.SamplesPerSec < plain.SamplesPerSec {
			t.Errorf("compression %q slowed training: %.0f < %.0f", comp, res.SamplesPerSec, plain.SamplesPerSec)
		}
	}
	for _, bad := range []string{"zip", "topk:", "topk:2.5"} {
		e.Compression = bad
		if _, err := bs.Run(e); err == nil {
			t.Errorf("bad compression %q accepted", bad)
		}
	}
}

func TestTuneOnline(t *testing.T) {
	e := vggExperiment(bs.WithPartitionCredit(64<<20, 64<<20)) // poor start
	e.GPUs = 8
	res, err := bs.TuneOnline(e, 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalSpeed <= res.FirstSpeed {
		t.Fatalf("online tuning did not improve: %.0f -> %.0f", res.FirstSpeed, res.FinalSpeed)
	}
	if res.Restarts > 0 && res.OverheadSec <= 0 {
		t.Fatal("restart overhead not accounted")
	}
	bad := vggExperiment(bs.Vanilla())
	if _, err := bs.TuneOnline(bad, 6, 2); err == nil {
		t.Fatal("TuneOnline accepted an unscheduled policy")
	}
}

func TestLiveScheduler(t *testing.T) {
	s := bs.NewScheduler(bs.WithPartitionCredit(1<<20, 4<<20))
	var started atomic.Int64
	var wg sync.WaitGroup
	const parts = 8
	wg.Add(1)
	task := &bs.CommTask{
		Layer: 0,
		Name:  "weight",
		Bytes: parts << 20,
		Start: func(sub bs.SubTask, done func()) {
			if sub.Count != parts || sub.Bytes != 1<<20 {
				t.Errorf("unexpected sub %+v", sub)
			}
			started.Add(1)
			done()
		},
		OnFinished: func() { wg.Done() },
	}
	if err := s.Enqueue(task); err != nil {
		t.Fatal(err)
	}
	if err := s.Enqueue(task); err == nil {
		t.Fatal("double enqueue accepted")
	}
	if err := s.NotifyReady(task); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	s.Shutdown()
	if got := started.Load(); got != parts {
		t.Fatalf("started %d partitions, want %d", got, parts)
	}
	st := s.Stats()
	if st.SubsStarted != parts || st.SubsFinished != parts || st.TasksEnqueued != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if !s.Drained() {
		t.Fatal("not drained")
	}
}

func TestLiveSchedulerRetries(t *testing.T) {
	s := bs.NewScheduler(bs.WithPartitionCredit(1<<20, 4<<20).WithMaxRetries(3))
	var wg sync.WaitGroup
	wg.Add(1)
	var failed atomic.Int64
	task := &bs.CommTask{
		Layer: 0,
		Name:  "weight",
		Bytes: 4 << 20,
		StartErr: func(sub bs.SubTask, done func(error)) {
			// Each partition fails once, then succeeds on retry.
			if sub.Index == int(failed.Load()) && failed.Add(1) > 0 {
				done(errFlaky)
				return
			}
			done(nil)
		},
		OnFinished: func() { wg.Done() },
	}
	if err := s.Enqueue(task); err != nil {
		t.Fatal(err)
	}
	if err := s.NotifyReady(task); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	s.Shutdown()
	if err := task.Err(); err != nil {
		t.Fatalf("task failed despite retry budget: %v", err)
	}
	st := s.Stats()
	if st.Retries == 0 || st.Failures != 0 {
		t.Fatalf("stats = %+v, want retries > 0 and no failures", st)
	}
	if st.SubsStarted != st.SubsFinished+st.Retries {
		t.Fatalf("counter invariant violated: %+v", st)
	}
}

var errFlaky = errors.New("transient fault")

func TestLiveSchedulerBothStartsRejected(t *testing.T) {
	s := bs.NewScheduler(bs.Vanilla())
	defer s.Shutdown()
	err := s.Enqueue(&bs.CommTask{
		Name:     "x",
		Bytes:    1,
		Start:    func(bs.SubTask, func()) {},
		StartErr: func(bs.SubTask, func(error)) {},
	})
	if err == nil {
		t.Fatal("task with both Start and StartErr accepted")
	}
}

func TestRunWithFaults(t *testing.T) {
	e := vggExperiment(bs.Vanilla())
	e.Transport = bs.TCP
	e.BandwidthGbps = 25
	e.Iterations = 6
	clean, err := bs.Run(e)
	if err != nil {
		t.Fatal(err)
	}
	e.Faults = &bs.FaultInjection{Seed: 5, DropProb: 0.02, RetransmitDelay: 2e-3}
	faulty, err := bs.Run(e)
	if err != nil {
		t.Fatal(err)
	}
	if faulty.Retransmits == 0 {
		t.Fatal("no retransmits recorded")
	}
	if faulty.SamplesPerSec >= clean.SamplesPerSec {
		t.Fatalf("faults did not slow the run: %.0f >= %.0f",
			faulty.SamplesPerSec, clean.SamplesPerSec)
	}
	// Faults are PS-only.
	e.Arch = bs.AllReduce
	if _, err := bs.Run(e); err == nil {
		t.Fatal("fault injection on all-reduce accepted")
	}
}

func TestLiveSchedulerNotEnqueued(t *testing.T) {
	s := bs.NewScheduler(bs.Vanilla())
	defer s.Shutdown()
	err := s.NotifyReady(&bs.CommTask{Name: "x", Bytes: 1, Start: func(bs.SubTask, func()) {}})
	if err == nil {
		t.Fatal("NotifyReady before Enqueue accepted")
	}
	if err.Error() == "" {
		t.Fatal("empty error message")
	}
}

#!/bin/sh
# checkdocs.sh — doc-comment lint for exported Go API.
#
# Every exported top-level symbol (func, method, type, var, const) in the
# checked packages must carry a doc comment on the line directly above its
# declaration. This is stricter than vet (which only checks comment *form*)
# and keeps the operator-facing packages honest: if it is exported, it is
# documented.
#
# Grouped `const (...)` / `var (...)` blocks are covered by requiring a doc
# comment on the block itself; individual names inside a block are not
# checked (idiomatic enums document the block once).
#
# Usage: scripts/checkdocs.sh [pkg-dir ...]
#        (defaults to the packages with operator-facing API surface)
set -u

dirs="${*:-internal/autotune internal/tune internal/metrics}"

fail=0
total=0
for d in $dirs; do
    if [ ! -d "$d" ]; then
        echo "checkdocs: no such directory: $d" >&2
        exit 2
    fi
    for f in "$d"/*.go; do
        case $f in
        *_test.go) continue ;;
        esac
        out=$(awk '
            /^func \([^)]*\) [A-Z][A-Za-z0-9_]*\(/ ||
            /^func [A-Z][A-Za-z0-9_]*\(/ ||
            /^type [A-Z]/ ||
            /^var [A-Z]/ || /^var \(/ ||
            /^const [A-Z]/ || /^const \(/ {
                n++
                if (prev !~ /^\/\//)
                    printf "%s:%d: exported symbol without doc comment: %s\n", FILENAME, FNR, $0
            }
            { prev = $0 }
            END { print "CHECKED " n > "/dev/stderr" }
        ' "$f" 2>/tmp/checkdocs.$$)
        n=$(sed -n 's/^CHECKED //p' /tmp/checkdocs.$$)
        total=$((total + ${n:-0}))
        if [ -n "$out" ]; then
            echo "$out" >&2
            fail=1
        fi
    done
done
rm -f /tmp/checkdocs.$$

if [ "$fail" -ne 0 ]; then
    echo "checkdocs: FAILED" >&2
    exit 1
fi
echo "checkdocs: OK ($total exported symbols documented in: $dirs)"

#!/bin/sh
# checklinks.sh — validate relative markdown links in the repo docs.
#
# Extracts every inline markdown link [text](target) from the checked
# documents, skips external targets (http/https/mailto), and verifies:
#
#   1. the target file exists on disk relative to the file containing
#      the link, and
#   2. when the link carries a #fragment (in-page or into another .md
#      file), a heading with the matching GitHub-style anchor exists in
#      the target document.
#
# Anchors are derived the way GitHub renders them: heading text
# lowercased, characters other than alphanumerics/spaces/dashes/
# underscores stripped, spaces turned into dashes. Duplicate-heading
# suffixes (-1, -2) are not modeled; the docs avoid duplicate headings.
#
# Exits non-zero listing every broken link or anchor, so CI catches doc
# rot when files move or sections are renamed.
#
# Usage: scripts/checklinks.sh [file-or-dir ...]
#        (defaults to README.md DESIGN.md EXPERIMENTS.md ROADMAP.md docs/)
set -u

targets="${*:-README.md DESIGN.md EXPERIMENTS.md ROADMAP.md docs}"

files=""
for t in $targets; do
    if [ -d "$t" ]; then
        files="$files $(find "$t" -name '*.md' | sort)"
    elif [ -f "$t" ]; then
        files="$files $t"
    else
        echo "checklinks: no such file or directory: $t" >&2
        exit 2
    fi
done

# anchors_of FILE — print the GitHub-style anchor of every markdown
# heading in FILE, one per line.
anchors_of() {
    grep '^#\{1,6\} ' "$1" \
        | sed 's/^#\{1,6\} *//' \
        | tr '[:upper:]' '[:lower:]' \
        | sed 's/[^a-z0-9 _-]//g; s/ /-/g'
}

# has_anchor FILE FRAGMENT — succeed when FILE has a heading whose
# derived anchor equals FRAGMENT.
has_anchor() {
    anchors_of "$1" | grep -qx "$2"
}

fail=0
checked=0
anchors=0
for f in $files; do
    dir=$(dirname "$f")
    # One link per line: grep the inline-link pattern, then peel off the
    # "[text](" prefix and the trailing ")". Reference-style links and
    # autolinks are out of scope (the docs do not use them).
    links=$(grep -o '\[[^]]*\]([^)]*)' "$f" | sed 's/^\[[^]]*\](//; s/)$//')
    for link in $links; do
        case $link in
        http://*|https://*|mailto:*) continue ;;  # external: not checked offline
        esac
        path=${link%%#*}                          # file part ('' for in-page)
        frag=""
        case $link in
        *'#'*) frag=${link#*#} ;;
        esac
        if [ -n "$path" ]; then
            checked=$((checked + 1))
            if [ ! -e "$dir/$path" ]; then
                echo "checklinks: $f: broken link -> $link" >&2
                fail=1
                continue
            fi
        fi
        if [ -n "$frag" ]; then
            # Resolve the document the fragment points into: this file
            # for in-page anchors, the target for cross-file ones. Only
            # markdown targets have derivable heading anchors.
            anchor_file=$f
            if [ -n "$path" ]; then
                case $path in
                *.md) anchor_file="$dir/$path" ;;
                *) continue ;;
                esac
            fi
            anchors=$((anchors + 1))
            if ! has_anchor "$anchor_file" "$frag"; then
                echo "checklinks: $f: missing anchor -> $link (no heading for #$frag in $anchor_file)" >&2
                fail=1
            fi
        fi
    done
done

if [ "$fail" -ne 0 ]; then
    echo "checklinks: FAILED" >&2
    exit 1
fi
echo "checklinks: OK ($checked relative links, $anchors anchors checked)"

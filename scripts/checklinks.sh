#!/bin/sh
# checklinks.sh — validate relative markdown links in the repo docs.
#
# Extracts every inline markdown link [text](target) from the checked
# documents, skips external targets (http/https/mailto) and pure
# in-page anchors (#...), strips any #fragment, and verifies the target
# exists on disk relative to the file containing the link. Exits non-zero
# listing every broken link, so CI catches doc rot when files move.
#
# Usage: scripts/checklinks.sh [file-or-dir ...]
#        (defaults to README.md DESIGN.md EXPERIMENTS.md ROADMAP.md docs/)
set -u

targets="${*:-README.md DESIGN.md EXPERIMENTS.md ROADMAP.md docs}"

files=""
for t in $targets; do
    if [ -d "$t" ]; then
        files="$files $(find "$t" -name '*.md' | sort)"
    elif [ -f "$t" ]; then
        files="$files $t"
    else
        echo "checklinks: no such file or directory: $t" >&2
        exit 2
    fi
done

fail=0
checked=0
for f in $files; do
    dir=$(dirname "$f")
    # One link per line: grep the inline-link pattern, then peel off the
    # "[text](" prefix and the trailing ")". Reference-style links and
    # autolinks are out of scope (the docs do not use them).
    links=$(grep -o '\[[^]]*\]([^)]*)' "$f" | sed 's/^\[[^]]*\](//; s/)$//')
    for link in $links; do
        case $link in
        http://*|https://*|mailto:*) continue ;;  # external: not checked offline
        '#'*) continue ;;                         # in-page anchor
        esac
        path=${link%%#*}                          # strip fragment
        [ -n "$path" ] || continue
        checked=$((checked + 1))
        if [ ! -e "$dir/$path" ]; then
            echo "checklinks: $f: broken link -> $link" >&2
            fail=1
        fi
    done
done

if [ "$fail" -ne 0 ]; then
    echo "checklinks: FAILED" >&2
    exit 1
fi
echo "checklinks: OK ($checked relative links checked)"

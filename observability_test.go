package bytescheduler_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	bs "bytescheduler"
	"bytescheduler/internal/netps"
	"bytescheduler/internal/trace"
)

// chromeEventKeys loads a Chrome trace JSON buffer and returns the ph=X
// span events plus the set of lanes named by ph=M metadata.
func chromeEventKeys(t *testing.T, data []byte) (spans []map[string]any, lanes map[string]bool) {
	t.Helper()
	var events []map[string]any
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	lanes = make(map[string]bool)
	for _, ev := range events {
		switch ev["ph"] {
		case "X":
			for _, key := range []string{"name", "ts", "dur", "pid", "tid"} {
				if _, ok := ev[key]; !ok {
					t.Fatalf("span event missing %q: %v", key, ev)
				}
			}
			spans = append(spans, ev)
		case "M":
			if ev["name"] != "thread_name" {
				t.Fatalf("unexpected metadata event %v", ev)
			}
			args, ok := ev["args"].(map[string]any)
			if !ok {
				t.Fatalf("thread_name without args: %v", ev)
			}
			lanes[args["name"].(string)] = true
		default:
			t.Fatalf("unexpected phase %v", ev["ph"])
		}
	}
	return spans, lanes
}

// TestSimRunMetricsAndTrace checks that a simulated run publishes metrics
// and a loadable Chrome trace through the facade.
func TestSimRunMetricsAndTrace(t *testing.T) {
	m := bs.NewMetrics()
	tr := bs.NewTraceRecorder()
	e := bs.Experiment{
		Model:         "VGG16",
		Arch:          bs.PS,
		Transport:     bs.RDMA,
		BandwidthGbps: 25,
		GPUs:          8,
		Policy:        bs.WithPartitionCredit(4<<20, 16<<20),
		Iterations:    4,
		Warmup:        1,
		Metrics:       m,
		Trace:         tr,
	}
	if _, err := bs.Run(e); err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()
	if got := snap.Counters["core_subs_started_total"]; got == 0 {
		t.Fatal("core_subs_started_total = 0 after a scheduled run")
	}
	if snap.Counters["core_subs_started_total"] != snap.Counters["core_subs_finished_total"] {
		t.Fatalf("started %d != finished %d at quiescence",
			snap.Counters["core_subs_started_total"], snap.Counters["core_subs_finished_total"])
	}
	if _, ok := snap.Counters["core_retries_total"]; !ok {
		t.Fatal("retry counter not published")
	}
	if got := snap.Gauges["core_credit_occupancy_bytes"]; got <= 0 || got > 16<<20 {
		t.Fatalf("core_credit_occupancy_bytes = %d, want in (0, credit]", got)
	}
	if got := snap.Gauges["core_credit_bytes"]; got != 16<<20 {
		t.Fatalf("core_credit_bytes = %d", got)
	}
	for _, name := range []string{"sim_compute_seconds", "sim_comm_seconds", "run_iter_seconds"} {
		h, ok := snap.Histograms[name]
		if !ok || h.Count == 0 {
			t.Fatalf("histogram %s empty: %+v", name, h)
		}
		if math.IsNaN(h.P50) || h.P50 < 0 {
			t.Fatalf("%s P50 = %v", name, h.P50)
		}
	}
	if tr.Len() == 0 {
		t.Fatal("sim trace recorded no spans")
	}
	var buf bytes.Buffer
	if err := m.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "# TYPE core_subs_started_total counter") {
		t.Fatalf("prometheus export missing core counters:\n%s", buf.String())
	}
}

// TestLiveAndSimTracesShareSchema runs a real netps-backed live scheduler
// and a simulated run, exports both traces, and verifies they are loadable
// Chrome-trace JSON with the identical event schema — the property that
// makes tuneviz's overlay (and any trace viewer) work on either.
func TestLiveAndSimTracesShareSchema(t *testing.T) {
	// --- live side: facade scheduler over a real netps server ---
	m := bs.NewMetrics()
	tr := bs.NewTraceRecorder()
	sched := bs.NewScheduler(bs.WithPartitionCredit(64<<10, 128<<10).WithMaxRetries(3))
	sched.Instrument(m)
	sched.SetTrace(tr)

	srv, err := netps.NewServer(1)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client := netps.NewClient(addr)
	defer client.Close()

	var wg sync.WaitGroup
	var injected atomic.Bool
	var subStarts, subFails atomic.Int64
	const layers = 3
	tasks := make([]*bs.CommTask, layers)
	for i := 0; i < layers; i++ {
		task := &bs.CommTask{
			Layer: i,
			Name:  fmt.Sprintf("grad%d", i),
			Bytes: 128 << 10,
		}
		task.StartErr = func(sub bs.SubTask, done func(error)) {
			go func() {
				if sub.TensorName == "grad0" && injected.CompareAndSwap(false, true) {
					done(errors.New("injected transport failure"))
					return
				}
				key := fmt.Sprintf("%s[%d/%d]", sub.TensorName, sub.Index, sub.Count)
				if err := client.Push(key, 1, make([]float32, sub.Bytes/4)); err != nil {
					done(err)
					return
				}
				_, err := client.Pull(key, 1)
				done(err)
			}()
		}
		task.OnSubStart = func(sub bs.SubTask) { subStarts.Add(1) }
		task.OnSubFinish = func(sub bs.SubTask, err error) {
			if err != nil {
				subFails.Add(1)
			}
		}
		wg.Add(1)
		task.OnFinished = wg.Done
		if err := sched.Enqueue(task); err != nil {
			t.Fatal(err)
		}
		tasks[i] = task
	}
	for i := layers - 1; i >= 0; i-- {
		if err := sched.NotifyReady(tasks[i]); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	sched.Shutdown()
	for _, task := range tasks {
		if err := task.Err(); err != nil {
			t.Fatalf("task %s failed: %v", task.Name, err)
		}
	}

	stats := sched.Stats()
	if stats.Retries != 1 {
		t.Fatalf("Retries = %d, want 1 injected", stats.Retries)
	}
	snap := m.Snapshot()
	if got := snap.Counters["core_retries_total"]; got != 1 {
		t.Fatalf("core_retries_total = %d, want 1", got)
	}
	if h := snap.Histograms["core_partition_seconds"]; h.Count == 0 {
		t.Fatal("core_partition_seconds empty on the live path")
	}
	if got := snap.Gauges["core_credit_occupancy_bytes"]; got <= 0 || got > 128<<10 {
		t.Fatalf("live credit occupancy = %d, want in (0, credit]", got)
	}
	if subStarts.Load() == 0 || subFails.Load() != 1 {
		t.Fatalf("span hooks: starts=%d fails=%d, want >0 and 1", subStarts.Load(), subFails.Load())
	}
	if tr.Clamped() != 0 {
		t.Logf("live trace clamped %d spans (tolerated)", tr.Clamped())
	}

	var liveBuf bytes.Buffer
	if err := tr.WriteChromeTrace(&liveBuf); err != nil {
		t.Fatal(err)
	}

	// --- sim side ---
	simTr := bs.NewTraceRecorder()
	e := bs.Experiment{
		Model:         "AlexNet",
		Arch:          bs.PS,
		Transport:     bs.TCP,
		BandwidthGbps: 10,
		GPUs:          8,
		Policy:        bs.WithPartitionCredit(4<<20, 16<<20),
		Iterations:    3,
		Warmup:        1,
		Trace:         simTr,
	}
	if _, err := bs.Run(e); err != nil {
		t.Fatal(err)
	}
	var simBuf bytes.Buffer
	if err := simTr.WriteChromeTrace(&simBuf); err != nil {
		t.Fatal(err)
	}

	// --- schema comparison ---
	liveSpans, liveLanes := chromeEventKeys(t, liveBuf.Bytes())
	simSpans, simLanes := chromeEventKeys(t, simBuf.Bytes())
	if len(liveSpans) == 0 || len(simSpans) == 0 {
		t.Fatalf("spans: live=%d sim=%d, want both > 0", len(liveSpans), len(simSpans))
	}
	if !liveLanes["core/L00"] {
		t.Fatalf("live lanes missing core/L00: %v", liveLanes)
	}
	if len(simLanes) == 0 {
		t.Fatal("sim trace has no named lanes")
	}
	keysOf := func(ev map[string]any) string {
		out := make([]string, 0, len(ev))
		for k := range ev {
			if k == "args" { // optional on span events
				continue
			}
			out = append(out, k)
		}
		return strings.Join(sortStrings(out), ",")
	}
	if keysOf(liveSpans[0]) != keysOf(simSpans[0]) {
		t.Fatalf("span schemas differ: live=%s sim=%s", keysOf(liveSpans[0]), keysOf(simSpans[0]))
	}

	// Both round-trip through the overlay loader.
	for name, buf := range map[string]*bytes.Buffer{"live": &liveBuf, "sim": &simBuf} {
		back, err := trace.ReadChromeTrace(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s trace not loadable: %v", name, err)
		}
		if back.Len() == 0 {
			t.Fatalf("%s trace loaded empty", name)
		}
	}
}

func sortStrings(xs []string) []string {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
	return xs
}

module bytescheduler

go 1.22

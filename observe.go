package bytescheduler

import (
	"io"
	"net/http"

	"bytescheduler/internal/metrics"
	"bytescheduler/internal/trace"
)

// Metrics is the public observability registry: counters, gauges and
// latency histograms emitted by live schedulers (Scheduler.Instrument), the
// netps parameter-server stack, and simulated runs (Experiment.Metrics).
// Live and simulated runs publish under the same metric names, so a
// dashboard built against one reads the other unchanged.
//
// A nil *Metrics is valid everywhere and disables collection.
type Metrics struct {
	reg *metrics.Registry
}

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics { return &Metrics{reg: metrics.NewRegistry()} }

// registry unwraps the internal registry; nil-safe.
func (m *Metrics) registry() *metrics.Registry {
	if m == nil {
		return nil
	}
	return m.reg
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format (version 0.0.4).
func (m *Metrics) WritePrometheus(w io.Writer) error {
	return m.registry().WritePrometheus(w)
}

// Handler returns an http.Handler serving the Prometheus text format —
// mount it at /metrics next to net/http/pprof.
func (m *Metrics) Handler() http.Handler { return m.registry().Handler() }

// String renders a JSON snapshot, satisfying expvar.Var so a Metrics can be
// published with expvar.Publish.
func (m *Metrics) String() string { return m.registry().String() }

// Names returns every registered metric name, sorted.
func (m *Metrics) Names() []string { return m.registry().Names() }

// HistogramStat summarizes one histogram: observation count, sum, and
// interpolated quantiles (NaN when empty).
type HistogramStat struct {
	Count         uint64
	Sum           float64
	P50, P90, P99 float64
}

// MetricsSnapshot is a point-in-time copy of every metric.
type MetricsSnapshot struct {
	Counters   map[string]uint64
	Gauges     map[string]int64
	Histograms map[string]HistogramStat
}

// Snapshot captures every metric. Safe to call concurrently with updates.
func (m *Metrics) Snapshot() MetricsSnapshot {
	s := m.registry().Snapshot()
	out := MetricsSnapshot{
		Counters:   s.Counters,
		Gauges:     s.Gauges,
		Histograms: make(map[string]HistogramStat, len(s.Histograms)),
	}
	for name, h := range s.Histograms {
		out.Histograms[name] = HistogramStat{
			Count: h.Count,
			Sum:   h.Sum,
			P50:   h.Quantile(0.50),
			P90:   h.Quantile(0.90),
			P99:   h.Quantile(0.99),
		}
	}
	return out
}

// TraceRecorder collects wall-clock spans from a live scheduler
// (Scheduler.SetTrace) or virtual-time spans from a simulated run, and
// exports them in the Chrome trace-event format — load the output in
// chrome://tracing or Perfetto. Both paths emit the identical schema:
// lanes become named threads, spans become complete events, and times are
// seconds since the run's start (the live tracer's epoch, or the
// simulator's t=0).
type TraceRecorder struct {
	rec  *trace.Recorder
	wall *trace.Wall
}

// NewTraceRecorder returns an empty wall-clock trace recorder.
func NewTraceRecorder() *TraceRecorder {
	rec := trace.New()
	return &TraceRecorder{rec: rec, wall: trace.NewWall(rec)}
}

// wallTracer unwraps the wall-clock tracer; nil-safe.
func (t *TraceRecorder) wallTracer() *trace.Wall {
	if t == nil {
		return nil
	}
	return t.wall
}

// recorder unwraps the span recorder; nil-safe.
func (t *TraceRecorder) recorder() *trace.Recorder {
	if t == nil {
		return nil
	}
	return t.rec
}

// Span opens a named span on the given lane now and returns the function
// that closes it — bracket any application phase (data loading, compute,
// checkpointing) to see it alongside scheduler and network spans.
func (t *TraceRecorder) Span(lane, name string) func() {
	if t == nil {
		return func() {}
	}
	return t.wall.Span(lane, name)
}

// Len returns the number of recorded spans.
func (t *TraceRecorder) Len() int { return t.recorder().Len() }

// Clamped returns how many spans arrived with end < start and were clamped
// to zero duration (wall-clock skew, stale retry timestamps). A nonzero
// value is a signal worth scraping, not an error.
func (t *TraceRecorder) Clamped() uint64 { return t.recorder().Clamped() }

// WriteChromeTrace writes all spans as a Chrome trace-event JSON array.
func (t *TraceRecorder) WriteChromeTrace(w io.Writer) error {
	return t.recorder().WriteChromeTrace(w)
}

// Gantt renders an ASCII Gantt chart of the recorded spans, width columns
// wide.
func (t *TraceRecorder) Gantt(width int) string { return t.recorder().Gantt(width) }

package main

import (
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// defaults returns run options for a small, fast experiment, overridden per
// test.
func defaults() options {
	return options{
		Model: "VGG16", Framework: "mxnet", Arch: "ps", Transport: "rdma",
		Policy: "bytescheduler", BW: 100, PartMB: 2, CreditMB: 8,
		GPUs: 8, Iters: 6, Warmup: 1, Seed: 1,
	}
}

func TestRunPolicies(t *testing.T) {
	for _, policy := range []string{"fifo", "p3", "tictac", "bytescheduler", "bs"} {
		o := defaults()
		o.Policy = policy
		if err := run(o); err != nil {
			t.Errorf("policy %s: %v", policy, err)
		}
	}
}

func TestRunArchAndTransportAliases(t *testing.T) {
	for _, arch := range []string{"ps", "nccl", "allreduce", "all-reduce"} {
		o := defaults()
		o.Arch = arch
		if err := run(o); err != nil {
			t.Errorf("arch %s: %v", arch, err)
		}
	}
	o := defaults()
	o.Transport = "tcp"
	o.Framework = "pytorch"
	o.Arch = "nccl"
	if err := run(o); err != nil {
		t.Errorf("pytorch nccl tcp: %v", err)
	}
}

func TestRunTune(t *testing.T) {
	o := defaults()
	o.TuneN = 4
	if err := run(o); err != nil {
		t.Fatal(err)
	}
}

func TestRunGanttAndChromeTrace(t *testing.T) {
	out := filepath.Join(t.TempDir(), "trace.json")
	o := defaults()
	o.Iters = 3
	o.Gantt = true
	o.ChromeOut = out
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 || data[0] != '[' {
		t.Fatalf("chrome trace looks wrong: %q...", data[:min(20, len(data))])
	}
}

func TestRunMetricsFlag(t *testing.T) {
	o := defaults()
	o.Iters = 3
	o.Metrics = true
	if err := run(o); err != nil {
		t.Fatal(err)
	}
}

func TestRunHTTPMetricsEndpoint(t *testing.T) {
	o := defaults()
	o.Iters = 3
	o.HTTP = "127.0.0.1:0"
	var addr string
	o.serveStarted = func(a string) { addr = a }
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	if addr == "" {
		t.Fatal("server never started")
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "core_subs_started_total") {
		t.Fatalf("/metrics missing scheduler counters:\n%s", body)
	}
	if !strings.Contains(resp.Header.Get("Content-Type"), "text/plain") {
		t.Fatalf("Content-Type = %q", resp.Header.Get("Content-Type"))
	}
	pp, err := http.Get("http://" + addr + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	pp.Body.Close()
	if pp.StatusCode != http.StatusOK {
		t.Fatalf("pprof status = %d", pp.StatusCode)
	}
}

func TestRunLiveFusedCodec(t *testing.T) {
	o := defaults()
	o.Backend = "ps"
	o.LiveWorkers = 2
	o.LiveLayers = "16,1,1,1,8"
	o.LiveCompute = 100 * time.Microsecond
	o.Iters = 3
	o.Warmup = 0
	o.FuseTheta = 4 << 10
	o.Codec = "fp16"
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	o.Codec = "zstd"
	if err := run(o); err == nil {
		t.Fatal("unknown codec accepted")
	}
}

func TestRunErrors(t *testing.T) {
	for name, mutate := range map[string]func(*options){
		"model":     func(o *options) { o.Model = "LeNet-0" },
		"framework": func(o *options) { o.Framework = "caffe" },
		"arch":      func(o *options) { o.Arch = "mesh" },
		"transport": func(o *options) { o.Transport = "roce9" },
		"policy":    func(o *options) { o.Policy = "lifo" },
		"gpus":      func(o *options) { o.GPUs = 3 },
	} {
		o := defaults()
		mutate(&o)
		if err := run(o); err == nil {
			t.Errorf("%s: invalid value accepted", name)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestRunLiveAutoTune(t *testing.T) {
	o := defaults()
	o.Backend = "ps"
	o.LiveWorkers = 2
	o.LiveLayers = "32,16,8"
	o.LiveCompute = 100 * time.Microsecond
	o.Iters = 6
	o.Warmup = 1
	o.AutoTune = true
	o.AutoTuneTrials = 2
	o.AutoTuneDwell = 2
	o.AutoTuneSuggester = "random"
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	o.AutoTuneSuggester = "annealing"
	if err := run(o); err == nil {
		t.Fatal("unknown suggester accepted")
	}
	o.AutoTuneSuggester = "bo"
	o.Policy = "fifo"
	if err := run(o); err == nil {
		t.Fatal("autotune over an unscheduled policy accepted")
	}
}

package main

import (
	"os"
	"path/filepath"
	"testing"
)

// runDefaults calls run with sensible small-experiment arguments,
// overridden per test.
type args struct {
	model, framework, arch, transport, policy string
	bw, partMB, creditMB                      float64
	gpus, iters, warmup, tuneN                int
	seed                                      int64
	jitter                                    float64
	async, gantt                              bool
	chromeOut                                 string
}

func defaults() args {
	return args{
		model: "VGG16", framework: "mxnet", arch: "ps", transport: "rdma",
		policy: "bytescheduler", bw: 100, partMB: 2, creditMB: 8,
		gpus: 8, iters: 6, warmup: 1, seed: 1,
	}
}

func (a args) run() error {
	return run(a.model, a.framework, a.arch, a.transport, a.policy,
		a.bw, a.partMB, a.creditMB, a.gpus, a.iters, a.warmup, a.tuneN,
		a.seed, a.jitter, a.async, a.gantt, a.chromeOut)
}

func TestRunPolicies(t *testing.T) {
	for _, policy := range []string{"fifo", "p3", "tictac", "bytescheduler", "bs"} {
		a := defaults()
		a.policy = policy
		if err := a.run(); err != nil {
			t.Errorf("policy %s: %v", policy, err)
		}
	}
}

func TestRunArchAndTransportAliases(t *testing.T) {
	for _, arch := range []string{"ps", "nccl", "allreduce", "all-reduce"} {
		a := defaults()
		a.arch = arch
		if err := a.run(); err != nil {
			t.Errorf("arch %s: %v", arch, err)
		}
	}
	a := defaults()
	a.transport = "tcp"
	a.framework = "pytorch"
	a.arch = "nccl"
	if err := a.run(); err != nil {
		t.Errorf("pytorch nccl tcp: %v", err)
	}
}

func TestRunTune(t *testing.T) {
	a := defaults()
	a.tuneN = 4
	if err := a.run(); err != nil {
		t.Fatal(err)
	}
}

func TestRunGanttAndChromeTrace(t *testing.T) {
	out := filepath.Join(t.TempDir(), "trace.json")
	a := defaults()
	a.iters = 3
	a.gantt = true
	a.chromeOut = out
	if err := a.run(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 || data[0] != '[' {
		t.Fatalf("chrome trace looks wrong: %q...", data[:min(20, len(data))])
	}
}

func TestRunErrors(t *testing.T) {
	for name, mutate := range map[string]func(*args){
		"model":     func(a *args) { a.model = "LeNet-0" },
		"framework": func(a *args) { a.framework = "caffe" },
		"arch":      func(a *args) { a.arch = "mesh" },
		"transport": func(a *args) { a.transport = "roce9" },
		"policy":    func(a *args) { a.policy = "lifo" },
		"gpus":      func(a *args) { a.gpus = 3 },
	} {
		a := defaults()
		mutate(&a)
		if err := a.run(); err == nil {
			t.Errorf("%s: invalid value accepted", name)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

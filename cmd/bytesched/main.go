// Command bytesched runs one simulated distributed-training configuration
// and reports its speed, optionally comparing against the vanilla baseline
// and linear scaling, auto-tuning the scheduler parameters, dumping a GPU
// timeline, and exposing run metrics for scraping.
//
// Examples:
//
//	bytesched -model VGG16 -arch ps -transport rdma -bw 100 -gpus 32
//	bytesched -model Transformer -arch nccl -policy p3
//	bytesched -model ResNet50 -tune 12
//	bytesched -model VGG16 -gantt -iters 4
//	bytesched -model VGG16 -metrics
//	bytesched -model VGG16 -http :8080   # then: curl localhost:8080/metrics
//	bytesched -backend ring -live-workers 3   # live ring all-reduce over TCP
//	bytesched -backend ps -policy fifo        # live parameter server, unscheduled
//	bytesched -backend ps -autotune           # online (partition, credit) tuning, no restarts
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"
	"strings"
	"time"

	"bytescheduler/internal/autotune"
	"bytescheduler/internal/compress"
	"bytescheduler/internal/core"
	"bytescheduler/internal/metrics"
	"bytescheduler/internal/model"
	"bytescheduler/internal/network"
	"bytescheduler/internal/plugin"
	"bytescheduler/internal/ps"
	"bytescheduler/internal/runner"
	"bytescheduler/internal/trace"
	"bytescheduler/internal/tune"
)

// options collects every command-line knob. run takes the struct rather
// than a positional parameter list so new observability flags don't ripple
// through every call site.
type options struct {
	Model, Framework, Arch, Transport, Policy string
	// Assign selects the PS placement strategy (ps.ParseStrategy
	// spellings: round-robin, size-balanced/lpt, hash-ring).
	Assign string
	// Priority overrides how the policy orders tensors: layer, tictac
	// (critical-path over the DAG timing profile), or random (seeded
	// ablation). Empty keeps the policy's own order.
	Priority string
	// Pipeline selects cross-iteration pipelining on live runs: auto, on
	// (stream tasks mid-backward-pass, coordinated rings through the
	// agreed-order window), off (hold every pass to its boundary).
	Pipeline                   string
	BW, PartMB, CreditMB       float64
	GPUs, Iters, Warmup, TuneN int
	Seed                       int64
	Jitter                     float64
	Async, Gantt               bool
	ChromeOut                  string
	// Metrics prints the run's metrics in Prometheus text format after the
	// summary.
	Metrics bool
	// HTTP, when non-empty, serves /metrics and /debug/pprof at this
	// address after the run completes (blocking until interrupted), so a
	// scraper or profiler can inspect the finished run.
	HTTP string
	// Cluster switches from a single training job to a multi-job cluster
	// scenario (internal/cluster): both the FIFO/uniform baseline and the
	// fair-share + delay-aware arm run on the same job population and the
	// comparison is printed. -metrics/-gantt/-chrome-trace attach to the
	// fair arm. ClusterJobs etc. size the scenario; -bw is the per-node
	// link rate and -seed drives job generation.
	Cluster                                 bool
	ClusterJobs, ClusterNodes, ClusterSlots int
	ClusterDelayMs, ClusterWindow           float64
	ClusterCredits                          int64
	// Backend, when non-empty, runs a *live* training loop over real
	// loopback TCP sockets instead of the simulator: "ps" (netps parameter
	// server) or "ring" (netar segmented ring all-reduce).
	Backend string
	// LiveWorkers is the live worker (ring peer / PS client) count.
	LiveWorkers int
	// LiveLayers is the live model's per-layer gradient sizes in KB,
	// comma-separated front to back.
	LiveLayers string
	// LiveCompute is the per-layer compute sleep for each pass.
	LiveCompute time.Duration
	// PSShards / PSPool tune the live PS server: lock-domain count and
	// handler-pool size (0 keeps the netps defaults).
	PSShards, PSPool int
	// FuseTheta buckets live tensors smaller than this many bytes into one
	// fused message (0 disables fusion).
	FuseTheta int64
	// Codec names the live wire codec (compress.ParseCodec spellings).
	Codec string
	// AutoTune closes the online tuning loop on the live run: the
	// controller re-tunes (partition, credit) mid-run, no restarts.
	AutoTune bool
	// AutoTuneTrials / AutoTuneDwell / AutoTuneSuggester configure the
	// controller's search budget, hysteresis window, and algorithm.
	AutoTuneTrials, AutoTuneDwell int
	AutoTuneSuggester             string
	// serveStarted, when non-nil, is invoked with the bound address instead
	// of blocking in http.Serve — a hook for tests.
	serveStarted func(addr string)
}

func main() {
	var o options
	flag.StringVar(&o.Model, "model", "VGG16", "model: "+strings.Join(model.Names(), ", "))
	flag.StringVar(&o.Framework, "framework", "mxnet", "framework: mxnet, tensorflow, pytorch")
	flag.StringVar(&o.Arch, "arch", "ps", "gradient synchronization: ps or nccl")
	flag.StringVar(&o.Transport, "transport", "rdma", "transport: tcp or rdma")
	flag.Float64Var(&o.BW, "bw", 100, "per-direction bandwidth in Gbps")
	flag.IntVar(&o.GPUs, "gpus", 16, "total GPUs (multiple of 8)")
	flag.StringVar(&o.Policy, "policy", "bytescheduler", "policy: fifo, p3, tictac, bytescheduler")
	flag.StringVar(&o.Priority, "priority", "",
		"priority strategy override: layer, tictac (critical-path from DAG timings), random (empty keeps the policy's order)")
	flag.StringVar(&o.Pipeline, "pipeline", "auto",
		"cross-iteration pipelining on live runs: auto, on (stream mid-pass), off (hold to pass end)")
	flag.Float64Var(&o.PartMB, "partition", 2, "partition size in MB (bytescheduler policy)")
	flag.Float64Var(&o.CreditMB, "credit", 8, "credit size in MB (bytescheduler policy)")
	flag.BoolVar(&o.Async, "async", false, "asynchronous PS")
	flag.StringVar(&o.Assign, "assign", "round-robin",
		"PS placement strategy: "+strings.Join(ps.StrategyNames(), ", "))
	flag.IntVar(&o.Iters, "iters", 12, "iterations to simulate")
	flag.IntVar(&o.Warmup, "warmup", 2, "warmup iterations excluded from measurement")
	flag.Float64Var(&o.Jitter, "jitter", 0, "relative compute jitter, e.g. 0.02")
	flag.Int64Var(&o.Seed, "seed", 1, "random seed")
	flag.IntVar(&o.TuneN, "tune", 0, "auto-tune partition/credit with this many BO trials")
	flag.BoolVar(&o.Gantt, "gantt", false, "print an ASCII GPU timeline")
	flag.StringVar(&o.ChromeOut, "chrome-trace", "", "write a Chrome trace JSON to this file")
	flag.BoolVar(&o.Metrics, "metrics", false, "print run metrics in Prometheus text format")
	flag.StringVar(&o.HTTP, "http", "", "serve /metrics and /debug/pprof at this address after the run")
	flag.BoolVar(&o.Cluster, "cluster", false,
		"run a multi-job cluster scenario: FIFO/uniform baseline vs fair-share + delay-aware placement")
	flag.IntVar(&o.ClusterJobs, "cluster-jobs", 240, "cluster scenario job count (with -cluster)")
	flag.IntVar(&o.ClusterNodes, "cluster-nodes", 16, "cluster node count (with -cluster)")
	flag.IntVar(&o.ClusterSlots, "cluster-slots", 4, "worker slots per node (with -cluster)")
	flag.Float64Var(&o.ClusterDelayMs, "cluster-delay-ms", 2,
		"max per-node network delay in ms, ramped across nodes (with -cluster)")
	flag.Int64Var(&o.ClusterCredits, "cluster-credits", 512,
		"cluster-wide credit pool in in-flight tensors (with -cluster)")
	flag.Float64Var(&o.ClusterWindow, "cluster-window", 60,
		"job arrival window in seconds (with -cluster)")
	flag.StringVar(&o.Backend, "backend", "", "live transport over real TCP instead of simulation: ps or ring")
	flag.IntVar(&o.LiveWorkers, "live-workers", 3, "live worker count (with -backend)")
	flag.StringVar(&o.LiveLayers, "live-layers", "64,128,256,256,512,512",
		"live per-layer gradient KB, front to back (with -backend)")
	flag.DurationVar(&o.LiveCompute, "live-compute", 500*time.Microsecond,
		"live per-layer compute sleep per pass (with -backend)")
	flag.IntVar(&o.PSShards, "ps-shards", 0,
		"live PS server lock-domain count (with -backend ps; 0 = netps default, 1 = single lock)")
	flag.IntVar(&o.PSPool, "ps-pool", 0,
		"live PS server handler-pool size (with -backend ps; 0 = netps default)")
	flag.Int64Var(&o.FuseTheta, "fuse-theta", 0,
		"live fusion threshold in bytes: smaller tensors ride one fused message (0 disables; with -backend)")
	flag.StringVar(&o.Codec, "codec", "",
		"live wire codec: none, fp16, int8, topk:<keep> (with -backend)")
	flag.BoolVar(&o.AutoTune, "autotune", false,
		"tune (partition, credit) online during the live run, starting from -partition/-credit (with -backend)")
	flag.IntVar(&o.AutoTuneTrials, "autotune-trials", 0,
		"online tuning probes per search episode (0 = controller default)")
	flag.IntVar(&o.AutoTuneDwell, "autotune-dwell", 0,
		"iterations each probed config is measured for (0 = controller default)")
	flag.StringVar(&o.AutoTuneSuggester, "autotune-suggester", "bo",
		"online tuning search algorithm: bo, grid, random")
	flag.Parse()
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "bytesched:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	if o.Backend != "" {
		return runLive(o)
	}
	if o.Cluster {
		return runCluster(o)
	}
	m, err := model.ByName(o.Model)
	if err != nil {
		return err
	}
	fw, err := plugin.FrameworkByName(o.Framework)
	if err != nil {
		return err
	}
	prof, err := network.ProfileByName(o.Transport)
	if err != nil {
		return err
	}
	var a runner.Arch
	switch strings.ToLower(o.Arch) {
	case "ps":
		a = runner.PS
	case "nccl", "allreduce", "all-reduce":
		a = runner.AllReduce
	default:
		return fmt.Errorf("unknown arch %q", o.Arch)
	}
	placement, err := ps.ParseStrategy(o.Assign)
	if err != nil {
		return err
	}

	cfg := runner.Config{
		Model:         m,
		Framework:     fw,
		Arch:          a,
		Transport:     prof,
		BandwidthGbps: o.BW,
		GPUs:          o.GPUs,
		Iterations:    o.Iters,
		Warmup:        o.Warmup,
		Jitter:        o.Jitter,
		Seed:          o.Seed,
		Async:         o.Async,
		Placement:     placement,
	}

	switch strings.ToLower(o.Policy) {
	case "fifo":
		cfg.Policy = core.FIFO()
	case "p3":
		cfg.Policy = core.P3()
		cfg.Scheduled = true
	case "tictac":
		cfg.Policy = core.Policy{Name: "tictac"}
		cfg.Priority = core.PriorityCriticalPath
		cfg.Scheduled = true
	case "bytescheduler", "bs":
		cfg.Policy = core.ByteScheduler(int64(o.PartMB*(1<<20)), int64(o.CreditMB*(1<<20)))
		cfg.Scheduled = true
	default:
		return fmt.Errorf("unknown policy %q", o.Policy)
	}
	if o.Priority != "" {
		if cfg.Priority, err = core.ParsePriorityPolicy(o.Priority); err != nil {
			return err
		}
	}
	if o.Pipeline != "" && o.Pipeline != "auto" {
		return fmt.Errorf("-pipeline is a live-run knob; combine it with -backend")
	}

	if o.TuneN > 0 {
		fmt.Printf("auto-tuning %s with %d BO trials...\n", cfg.Name(), o.TuneN)
		res := tune.PartitionCredit(tune.NewBO(tune.ParamBounds(), o.Seed),
			func(p, c int64) float64 {
				speed, err := runner.SpeedWithParams(cfg, p, c)
				if err != nil {
					return 0
				}
				return speed
			}, o.TuneN)
		fmt.Printf("best: partition=%.1fMB credit=%.1fMB -> %.0f %s/s\n",
			float64(res.Partition)/(1<<20), float64(res.Credit)/(1<<20), res.Speed, m.SampleUnit)
		cfg.Policy = core.ByteScheduler(res.Partition, res.Credit)
		cfg.Scheduled = true
	}

	var rec *trace.Recorder
	if o.Gantt || o.ChromeOut != "" {
		rec = trace.New()
		cfg.Trace = rec
	}
	var reg *metrics.Registry
	if o.Metrics || o.HTTP != "" {
		reg = metrics.NewRegistry()
		cfg.Metrics = reg
	}

	res, err := runner.Run(cfg)
	if err != nil {
		return err
	}

	baseCfg := cfg
	baseCfg.Policy = core.FIFO()
	baseCfg.Scheduled = false
	baseCfg.Trace = nil
	baseCfg.Metrics = nil
	base, err := runner.Run(baseCfg)
	if err != nil {
		return err
	}
	linear := runner.LinearScaling(cfg)

	fmt.Printf("%s, policy=%s\n", cfg.Name(), cfg.Policy.Name)
	fmt.Printf("  speed:     %10.0f %s/s  (iter %.1f ms)\n", res.SamplesPerSec, m.SampleUnit, res.IterTime*1e3)
	fmt.Printf("  baseline:  %10.0f %s/s  (iter %.1f ms)\n", base.SamplesPerSec, m.SampleUnit, base.IterTime*1e3)
	fmt.Printf("  linear:    %10.0f %s/s\n", linear, m.SampleUnit)
	fmt.Printf("  speedup:   %+9.1f%% over baseline, %.0f%% of linear\n",
		(res.SamplesPerSec-base.SamplesPerSec)/base.SamplesPerSec*100,
		res.SamplesPerSec/linear*100)
	fmt.Printf("  GPU util:  %9.0f%% compute (rest is communication stall)\n", res.GPUUtilization*100)
	if a == runner.PS {
		fmt.Printf("  PS load:   max/mean %.2f observed, %.2f planned (%s placement)\n",
			res.LoadImbalance, res.PlannedImbalance, placement)
	}
	fmt.Printf("  scheduler: %d partitions sent, %d preemptions\n",
		res.UpStats.SubsStarted+res.DownStats.SubsStarted,
		res.UpStats.Preemptions+res.DownStats.Preemptions)

	if o.Gantt {
		fmt.Println()
		fmt.Print(rec.Gantt(100))
	}
	if o.ChromeOut != "" {
		f, err := os.Create(o.ChromeOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := rec.WriteChromeTrace(f); err != nil {
			return err
		}
		fmt.Printf("wrote Chrome trace to %s\n", o.ChromeOut)
	}
	if o.Metrics {
		fmt.Println()
		if err := reg.WritePrometheus(os.Stdout); err != nil {
			return err
		}
	}
	if o.HTTP != "" {
		return serveMetrics(o, reg)
	}
	return nil
}

// livePolicy maps the -policy and -priority flags onto a live scheduling
// policy plus the priority strategy the runner materializes from the run's
// layer profile.
func livePolicy(o options) (core.Policy, core.PriorityPolicy, error) {
	var pol core.Policy
	prio := core.PriorityDefault
	switch strings.ToLower(o.Policy) {
	case "fifo":
		pol = runner.LiveFIFO()
	case "p3":
		pol = core.P3()
	case "tictac":
		pol = core.Policy{Name: "tictac"}
		prio = core.PriorityCriticalPath
	case "bytescheduler", "bs":
		pol = core.ByteScheduler(int64(o.PartMB*(1<<20)), int64(o.CreditMB*(1<<20)))
	default:
		return core.Policy{}, prio, fmt.Errorf("unknown policy %q", o.Policy)
	}
	if o.Priority != "" {
		var err error
		if prio, err = core.ParsePriorityPolicy(o.Priority); err != nil {
			return core.Policy{}, prio, err
		}
	}
	return pol, prio, nil
}

// parseLiveLayers parses the -live-layers KB list into per-layer bytes.
func parseLiveLayers(s string) ([]int64, error) {
	var out []int64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kb, err := strconv.ParseFloat(part, 64)
		if err != nil || kb <= 0 {
			return nil, fmt.Errorf("bad layer size %q (want positive KB)", part)
		}
		b := int64(kb*1024) / 4 * 4 // fp32-align
		if b < 4 {
			b = 4
		}
		out = append(out, b)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no layers in %q", s)
	}
	return out, nil
}

// runLive executes a live training loop over real loopback sockets (-backend)
// and reports wall-clock speed against the unscheduled FIFO baseline on the
// same topology.
func runLive(o options) error {
	backend, err := runner.ParseLiveBackend(o.Backend)
	if err != nil {
		return err
	}
	layers, err := parseLiveLayers(o.LiveLayers)
	if err != nil {
		return err
	}
	policy, priority, err := livePolicy(o)
	if err != nil {
		return err
	}
	pipeline, err := runner.ParsePipelineMode(o.Pipeline)
	if err != nil {
		return err
	}
	codec, err := compress.ParseCodec(o.Codec)
	if err != nil {
		return err
	}
	iters, warmup := o.Iters, o.Warmup
	if iters < warmup+2 {
		iters = warmup + 2
	}
	cfg := runner.LiveConfig{
		Backend:         backend,
		Workers:         o.LiveWorkers,
		LayerBytes:      layers,
		Policy:          policy,
		Priority:        priority,
		Pipeline:        pipeline,
		Iterations:      iters,
		Warmup:          warmup,
		ForwardCompute:  o.LiveCompute,
		BackwardCompute: o.LiveCompute,
		Seed:            o.Seed,
		PSShards:        o.PSShards,
		PSPool:          o.PSPool,
		FuseTheta:       o.FuseTheta,
		Codec:           codec,
	}
	if o.AutoTune {
		cfg.AutoTune = &autotune.Config{
			Suggester:  o.AutoTuneSuggester,
			Seed:       o.Seed,
			DwellIters: o.AutoTuneDwell,
			Trials:     o.AutoTuneTrials,
		}
		// Stretch the run so one full search episode fits: each probe
		// costs one transition iteration plus a dwell window, and a few
		// steady windows confirm the adopted config.
		trials, dwell := o.AutoTuneTrials, o.AutoTuneDwell
		if trials <= 0 {
			trials = 8
		}
		if dwell <= 0 {
			dwell = 3
		}
		if min := warmup + (trials+2)*(dwell+1) + 3*dwell; iters < min {
			iters = min
			cfg.Iterations = iters
		}
	}
	var rec *trace.Recorder
	if o.ChromeOut != "" {
		rec = trace.New()
		cfg.Trace = trace.NewWall(rec)
	}
	var reg *metrics.Registry
	if o.Metrics || o.HTTP != "" {
		reg = metrics.NewRegistry()
		cfg.Metrics = reg
	}

	res, err := runner.RunLive(cfg)
	if err != nil {
		return err
	}
	baseCfg := cfg
	baseCfg.Policy = runner.LiveFIFO()
	baseCfg.Priority = core.PriorityDefault // vanilla emission order
	baseCfg.Pipeline = runner.PipelineAuto
	baseCfg.Trace = nil
	baseCfg.Metrics = nil
	baseCfg.AutoTune = nil // the unscheduled baseline has no knobs to tune
	base, err := runner.RunLive(baseCfg)
	if err != nil {
		return err
	}

	var total int64
	for _, b := range layers {
		total += b
	}
	fmt.Printf("live %s x%d workers, %d layers (%.0f KB), policy=%s\n",
		backend, cfg.Workers, len(layers), float64(total)/1024, policy.Name)
	if cfg.FuseTheta > 0 || !codec.IsIdentity() {
		fmt.Printf("  wire:      fuse-theta=%d B, codec=%s\n", cfg.FuseTheta, codec.Name())
	}
	if priority != core.PriorityDefault || pipeline != runner.PipelineAuto {
		fmt.Printf("  schedule:  priority=%s, pipeline=%s\n", priority, pipeline)
	}
	fmt.Printf("  iter:      %10.2f ms  (%s)\n", res.IterTime*1e3, policy.Name)
	fmt.Printf("  baseline:  %10.2f ms  (fifo)\n", base.IterTime*1e3)
	fmt.Printf("  speedup:   %+9.1f%% over unscheduled\n", (base.IterTime-res.IterTime)/res.IterTime*100)
	fmt.Printf("  scheduler: %d partitions sent, %d preemptions\n",
		res.Stats.SubsStarted, res.Stats.Preemptions)
	if rep := res.AutoTune; rep != nil {
		fmt.Printf("  autotune:  %d probes, %d retune(s), %d rollback(s) across %d episode(s) (%s suggester)\n",
			rep.Probes, rep.Retunes, rep.Rollbacks, rep.Episodes, o.AutoTuneSuggester)
		fmt.Printf("             best %v at %.1f it/s, final %v, settled=%v\n",
			rep.Best, rep.BestSpeed, rep.Final, rep.Settled)
	}

	if o.ChromeOut != "" {
		f, err := os.Create(o.ChromeOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := rec.WriteChromeTrace(f); err != nil {
			return err
		}
		fmt.Printf("wrote Chrome trace to %s\n", o.ChromeOut)
	}
	if o.Metrics {
		fmt.Println()
		if err := reg.WritePrometheus(os.Stdout); err != nil {
			return err
		}
	}
	if o.HTTP != "" {
		return serveMetrics(o, reg)
	}
	return nil
}

// serveMetrics exposes the run's metrics and the Go profiler over HTTP:
// /metrics in the Prometheus text format, /debug/pprof/* from
// net/http/pprof. It blocks in http.Serve unless a test hook is installed.
func serveMetrics(o options, reg *metrics.Registry) error {
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", o.HTTP)
	if err != nil {
		return err
	}
	fmt.Printf("serving /metrics and /debug/pprof on http://%s\n", ln.Addr())
	if o.serveStarted != nil {
		srv := &http.Server{Handler: mux}
		go srv.Serve(ln) //nolint:errcheck // shut down by the test via the listener
		o.serveStarted(ln.Addr().String())
		return nil
	}
	return http.Serve(ln, mux)
}

// Command bytesched runs one simulated distributed-training configuration
// and reports its speed, optionally comparing against the vanilla baseline
// and linear scaling, auto-tuning the scheduler parameters, and dumping a
// GPU timeline.
//
// Examples:
//
//	bytesched -model VGG16 -arch ps -transport rdma -bw 100 -gpus 32
//	bytesched -model Transformer -arch nccl -policy p3
//	bytesched -model ResNet50 -tune 12
//	bytesched -model VGG16 -gantt -iters 4
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"bytescheduler/internal/core"
	"bytescheduler/internal/model"
	"bytescheduler/internal/network"
	"bytescheduler/internal/plugin"
	"bytescheduler/internal/runner"
	"bytescheduler/internal/trace"
	"bytescheduler/internal/tune"
)

func main() {
	var (
		modelName = flag.String("model", "VGG16", "model: "+strings.Join(model.Names(), ", "))
		framework = flag.String("framework", "mxnet", "framework: mxnet, tensorflow, pytorch")
		arch      = flag.String("arch", "ps", "gradient synchronization: ps or nccl")
		transport = flag.String("transport", "rdma", "transport: tcp or rdma")
		bw        = flag.Float64("bw", 100, "per-direction bandwidth in Gbps")
		gpus      = flag.Int("gpus", 16, "total GPUs (multiple of 8)")
		policy    = flag.String("policy", "bytescheduler", "policy: fifo, p3, tictac, bytescheduler")
		partMB    = flag.Float64("partition", 2, "partition size in MB (bytescheduler policy)")
		creditMB  = flag.Float64("credit", 8, "credit size in MB (bytescheduler policy)")
		async     = flag.Bool("async", false, "asynchronous PS")
		iters     = flag.Int("iters", 12, "iterations to simulate")
		warmup    = flag.Int("warmup", 2, "warmup iterations excluded from measurement")
		jitter    = flag.Float64("jitter", 0, "relative compute jitter, e.g. 0.02")
		seed      = flag.Int64("seed", 1, "random seed")
		tuneN     = flag.Int("tune", 0, "auto-tune partition/credit with this many BO trials")
		gantt     = flag.Bool("gantt", false, "print an ASCII GPU timeline")
		chromeOut = flag.String("chrome-trace", "", "write a Chrome trace JSON to this file")
	)
	flag.Parse()
	if err := run(*modelName, *framework, *arch, *transport, *policy, *bw, *partMB, *creditMB,
		*gpus, *iters, *warmup, *tuneN, *seed, *jitter, *async, *gantt, *chromeOut); err != nil {
		fmt.Fprintln(os.Stderr, "bytesched:", err)
		os.Exit(1)
	}
}

func run(modelName, framework, arch, transport, policy string,
	bw, partMB, creditMB float64, gpus, iters, warmup, tuneN int,
	seed int64, jitter float64, async, gantt bool, chromeOut string) error {

	m, err := model.ByName(modelName)
	if err != nil {
		return err
	}
	fw, err := plugin.FrameworkByName(framework)
	if err != nil {
		return err
	}
	prof, err := network.ProfileByName(transport)
	if err != nil {
		return err
	}
	var a runner.Arch
	switch strings.ToLower(arch) {
	case "ps":
		a = runner.PS
	case "nccl", "allreduce", "all-reduce":
		a = runner.AllReduce
	default:
		return fmt.Errorf("unknown arch %q", arch)
	}

	cfg := runner.Config{
		Model:         m,
		Framework:     fw,
		Arch:          a,
		Transport:     prof,
		BandwidthGbps: bw,
		GPUs:          gpus,
		Iterations:    iters,
		Warmup:        warmup,
		Jitter:        jitter,
		Seed:          seed,
		Async:         async,
	}

	switch strings.ToLower(policy) {
	case "fifo":
		cfg.Policy = core.FIFO()
	case "p3":
		cfg.Policy = core.P3()
		cfg.Scheduled = true
	case "tictac":
		cfg.Policy = core.TicTacLike()
		cfg.Scheduled = true
	case "bytescheduler", "bs":
		cfg.Policy = core.ByteScheduler(int64(partMB*(1<<20)), int64(creditMB*(1<<20)))
		cfg.Scheduled = true
	default:
		return fmt.Errorf("unknown policy %q", policy)
	}

	if tuneN > 0 {
		fmt.Printf("auto-tuning %s with %d BO trials...\n", cfg.Name(), tuneN)
		res := tune.PartitionCredit(tune.NewBO(tune.ParamBounds(), seed),
			func(p, c int64) float64 {
				speed, err := runner.SpeedWithParams(cfg, p, c)
				if err != nil {
					return 0
				}
				return speed
			}, tuneN)
		fmt.Printf("best: partition=%.1fMB credit=%.1fMB -> %.0f %s/s\n",
			float64(res.Partition)/(1<<20), float64(res.Credit)/(1<<20), res.Speed, m.SampleUnit)
		cfg.Policy = core.ByteScheduler(res.Partition, res.Credit)
		cfg.Scheduled = true
	}

	var rec *trace.Recorder
	if gantt || chromeOut != "" {
		rec = trace.New()
		cfg.Trace = rec
	}

	res, err := runner.Run(cfg)
	if err != nil {
		return err
	}

	baseCfg := cfg
	baseCfg.Policy = core.FIFO()
	baseCfg.Scheduled = false
	baseCfg.Trace = nil
	base, err := runner.Run(baseCfg)
	if err != nil {
		return err
	}
	linear := runner.LinearScaling(cfg)

	fmt.Printf("%s, policy=%s\n", cfg.Name(), cfg.Policy.Name)
	fmt.Printf("  speed:     %10.0f %s/s  (iter %.1f ms)\n", res.SamplesPerSec, m.SampleUnit, res.IterTime*1e3)
	fmt.Printf("  baseline:  %10.0f %s/s  (iter %.1f ms)\n", base.SamplesPerSec, m.SampleUnit, base.IterTime*1e3)
	fmt.Printf("  linear:    %10.0f %s/s\n", linear, m.SampleUnit)
	fmt.Printf("  speedup:   %+9.1f%% over baseline, %.0f%% of linear\n",
		(res.SamplesPerSec-base.SamplesPerSec)/base.SamplesPerSec*100,
		res.SamplesPerSec/linear*100)
	fmt.Printf("  GPU util:  %9.0f%% compute (rest is communication stall)\n", res.GPUUtilization*100)
	if a == runner.PS {
		fmt.Printf("  PS load:   max/mean %.2f\n", res.LoadImbalance)
	}
	fmt.Printf("  scheduler: %d partitions sent, %d preemptions\n",
		res.UpStats.SubsStarted+res.DownStats.SubsStarted,
		res.UpStats.Preemptions+res.DownStats.Preemptions)

	if gantt {
		fmt.Println()
		fmt.Print(rec.Gantt(100))
	}
	if chromeOut != "" {
		f, err := os.Create(chromeOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := rec.WriteChromeTrace(f); err != nil {
			return err
		}
		fmt.Printf("wrote Chrome trace to %s\n", chromeOut)
	}
	return nil
}

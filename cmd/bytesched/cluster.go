package main

import (
	"fmt"
	"os"

	"bytescheduler/internal/cluster"
	"bytescheduler/internal/metrics"
	"bytescheduler/internal/runner"
	"bytescheduler/internal/trace"
)

// runCluster executes the -cluster mode: the same deterministic job
// population runs once under the FIFO/uniform baseline and once under
// fair-share + delay-aware scheduling, and the two reports are printed
// side by side. -metrics/-gantt/-chrome-trace observe the fair arm.
func runCluster(o options) error {
	sc := cluster.Scenario{
		Jobs:             o.ClusterJobs,
		Nodes:            o.ClusterNodes,
		SlotsPerNode:     o.ClusterSlots,
		LinkGbps:         o.BW,
		MaxDelayMs:       o.ClusterDelayMs,
		CreditPool:       o.ClusterCredits,
		ArrivalWindowSec: o.ClusterWindow,
		Seed:             o.Seed,
	}
	if err := sc.Validate(); err != nil {
		return err
	}

	baseSc := sc
	baseRes, err := runner.Run(runner.Config{Cluster: &baseSc})
	if err != nil {
		return err
	}
	base := *baseRes.Cluster

	fairSc := sc
	fairSc.Fair = true
	fairCfg := runner.Config{Cluster: &fairSc}
	var rec *trace.Recorder
	if o.Gantt || o.ChromeOut != "" {
		rec = trace.New()
		fairCfg.Trace = rec
	}
	var reg *metrics.Registry
	if o.Metrics || o.HTTP != "" {
		reg = metrics.NewRegistry()
		fairCfg.Metrics = reg
	}
	fairRes, err := runner.Run(fairCfg)
	if err != nil {
		return err
	}
	fair := *fairRes.Cluster

	fmt.Printf("cluster: %d jobs (%.1fM tensor transfers) on %d nodes x%d slots, %.0fG links, %.0fs arrival window\n",
		base.Jobs, float64(base.TotalTensors)/1e6, sc.Nodes, sc.SlotsPerNode, sc.LinkGbps, sc.ArrivalWindowSec)
	fmt.Printf("  %-18s  %10s  %10s  %10s  %10s  %10s  %5s\n",
		"arm", "jct_mean_s", "jct_p50_s", "jct_p95_s", "queue_s", "makespan_s", "util")
	for _, a := range []struct {
		label string
		r     cluster.Report
	}{{"fifo/uniform", base}, {"fair/delay-aware", fair}} {
		fmt.Printf("  %-18s  %10.1f  %10.1f  %10.1f  %10.1f  %10.1f  %4.0f%%\n",
			a.label, a.r.JCTMeanSec, a.r.JCTP50Sec, a.r.JCTP95Sec,
			a.r.QueueMeanSec, a.r.MakespanSec, a.r.UtilizationPct)
	}
	fmt.Printf("  p95 JCT:   %+.1f%%   mean JCT: %+.1f%%\n",
		(fair.JCTP95Sec-base.JCTP95Sec)/base.JCTP95Sec*100,
		(fair.JCTMeanSec-base.JCTMeanSec)/base.JCTMeanSec*100)

	if o.Gantt {
		fmt.Println()
		fmt.Print(rec.Gantt(100))
	}
	if o.ChromeOut != "" {
		f, err := os.Create(o.ChromeOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := rec.WriteChromeTrace(f); err != nil {
			return err
		}
		fmt.Printf("wrote Chrome trace to %s\n", o.ChromeOut)
	}
	if o.Metrics {
		fmt.Println()
		if err := reg.WritePrometheus(os.Stdout); err != nil {
			return err
		}
	}
	if o.HTTP != "" {
		return serveMetrics(o, reg)
	}
	return nil
}

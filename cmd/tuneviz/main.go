// Command tuneviz walks through the paper's auto-tuning machinery: it
// reproduces the Figure 9 Bayesian-Optimization posterior (with a crude
// terminal plot) and the Figure 14 search-cost comparison.
//
// With -sim-trace and -live-trace it instead overlays two Chrome trace
// recordings — one from a simulated run (bytesched -chrome-trace), one from
// a live scheduler (TraceRecorder.WriteChromeTrace) — on a shared timebase:
//
//	tuneviz -sim-trace sim.json -live-trace live.json
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"bytescheduler/internal/experiments"
	"bytescheduler/internal/sweep"
)

func main() {
	var (
		seed      = flag.Int64("seed", 1, "random seed")
		full      = flag.Bool("full", false, "full-size Figure 14 comparison")
		simTrace  = flag.String("sim-trace", "", "Chrome trace JSON from a simulated run")
		liveTrace = flag.String("live-trace", "", "Chrome trace JSON from a live run")
		width     = flag.Int("width", 100, "overlay chart width in columns")
		parallel  = flag.Int("parallel", runtime.GOMAXPROCS(0),
			"trial worker-pool size (1 = serial; results are identical at any value)")
	)
	flag.Parse()

	if *simTrace != "" || *liveTrace != "" {
		out, err := runOverlay(*simTrace, *liveTrace, *width)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tuneviz:", err)
			os.Exit(1)
		}
		fmt.Print(out)
		return
	}

	opts := experiments.Opts{Quick: !*full, Seed: *seed,
		Engine: sweep.New(sweep.WithWorkers(*parallel))}

	fig9, err := experiments.Fig09BOPosterior(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tuneviz:", err)
		os.Exit(1)
	}
	fmt.Print(fig9.Format())
	fmt.Println()
	fmt.Println(sparkline(fig9))
	fmt.Println()

	fig14, err := experiments.Fig14SearchCost(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tuneviz:", err)
		os.Exit(1)
	}
	fmt.Print(fig14.Format())
}

// sparkline renders the posterior mean column as a rough terminal plot.
func sparkline(tab experiments.Table) string {
	var vals []float64
	var labels []string
	for _, row := range tab.Rows {
		v, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			continue
		}
		vals = append(vals, v)
		labels = append(labels, row[0])
	}
	if len(vals) == 0 {
		return ""
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	var b strings.Builder
	b.WriteString("posterior mean vs credit size (MB):\n")
	for i, v := range vals {
		bars := int((v - lo) / (hi - lo) * 50)
		fmt.Fprintf(&b, "%8s |%s\n", labels[i], strings.Repeat("#", bars))
	}
	return b.String()
}

package main

import (
	"strings"
	"testing"

	"bytescheduler/internal/experiments"
)

func TestSparkline(t *testing.T) {
	tab := experiments.Table{
		Rows: [][]string{
			{"1.0", "100", "5"},
			{"2.0", "200", "5"},
			{"4.0", "150", "5"},
		},
	}
	out := sparkline(tab)
	if !strings.Contains(out, "1.0") || !strings.Contains(out, "#") {
		t.Fatalf("sparkline output:\n%s", out)
	}
	// The 200-valued row must have the longest bar.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	count := func(s string) int { return strings.Count(s, "#") }
	if count(lines[2]) <= count(lines[1]) || count(lines[2]) <= count(lines[3]) {
		t.Fatalf("peak row not longest:\n%s", out)
	}
}

func TestSparklineDegenerate(t *testing.T) {
	if out := sparkline(experiments.Table{}); out != "" {
		t.Fatalf("empty table sparkline = %q", out)
	}
	flat := experiments.Table{Rows: [][]string{{"1", "7", "0"}, {"2", "7", "0"}}}
	if out := sparkline(flat); out == "" {
		t.Fatal("flat posterior must still render")
	}
	bad := experiments.Table{Rows: [][]string{{"1", "not-a-number", "0"}}}
	if out := sparkline(bad); out != "" {
		t.Fatalf("unparseable rows should be skipped, got %q", out)
	}
}

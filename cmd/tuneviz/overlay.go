package main

import (
	"fmt"
	"os"
	"strings"

	"bytescheduler/internal/trace"
)

// runOverlay loads a simulated and a live Chrome trace and renders them on
// one shared timebase — the visual check that a live deployment's schedule
// matches what the simulator predicted for the same workload. Both files
// come from the same WriteChromeTrace schema (bytesched -chrome-trace for
// sim, TraceRecorder.WriteChromeTrace for live), so either side loads with
// the same reader.
func runOverlay(simPath, livePath string, width int) (string, error) {
	if simPath == "" || livePath == "" {
		return "", fmt.Errorf("overlay needs both -sim-trace and -live-trace")
	}
	simRec, err := loadTrace(simPath)
	if err != nil {
		return "", fmt.Errorf("sim trace %s: %w", simPath, err)
	}
	liveRec, err := loadTrace(livePath)
	if err != nil {
		return "", fmt.Errorf("live trace %s: %w", livePath, err)
	}
	return overlay(simRec, liveRec, width), nil
}

// loadTrace reads a Chrome trace-event JSON file back into a recorder.
func loadTrace(path string) (*trace.Recorder, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trace.ReadChromeTrace(f)
}

// overlay renders the two recordings as stacked Gantt charts sharing one
// time axis (0 .. the later of the two horizons), followed by per-lane
// busy-time statistics. A shared axis matters: scaling each trace to its
// own extent would hide exactly the discrepancy the overlay exists to show.
func overlay(simRec, liveRec *trace.Recorder, width int) string {
	if width < 20 {
		width = 20
	}
	horizon := traceHorizon(simRec)
	if lh := traceHorizon(liveRec); lh > horizon {
		horizon = lh
	}
	var b strings.Builder
	fmt.Fprintf(&b, "shared timebase: 0 .. %.4gs\n", horizon)
	renderSection(&b, "sim", simRec, horizon, width)
	renderSection(&b, "live", liveRec, horizon, width)
	return b.String()
}

// traceHorizon returns the latest span end in the recording.
func traceHorizon(rec *trace.Recorder) float64 {
	var h float64
	for _, s := range rec.Spans() {
		if s.End > h {
			h = s.End
		}
	}
	return h
}

// renderSection draws one trace's lanes against the shared horizon, one row
// per lane, with busy seconds and utilization per row.
func renderSection(b *strings.Builder, label string, rec *trace.Recorder, horizon float64, width int) {
	fmt.Fprintf(b, "\n=== %s: %d spans, %d lanes ===\n", label, rec.Len(), len(rec.Lanes()))
	if rec.Len() == 0 || horizon <= 0 {
		b.WriteString("(empty trace)\n")
		return
	}
	byLane := make(map[string][]trace.Span)
	for _, s := range rec.Spans() {
		byLane[s.Lane] = append(byLane[s.Lane], s)
	}
	nameW := 0
	for _, lane := range rec.Lanes() {
		if len(lane) > nameW {
			nameW = len(lane)
		}
	}
	for _, lane := range rec.Lanes() {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		var busy float64
		for _, s := range byLane[lane] {
			busy += s.Duration()
			lo := int(s.Start / horizon * float64(width))
			hi := int(s.End/horizon*float64(width) + 0.9999)
			if hi <= lo {
				hi = lo + 1
			}
			for i := lo; i < hi && i < width; i++ {
				row[i] = '#'
			}
		}
		fmt.Fprintf(b, "%-*s |%s| %.4gs %4.0f%%\n",
			nameW, lane, row, busy, busy/horizon*100)
	}
}

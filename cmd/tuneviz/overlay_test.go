package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bytescheduler/internal/trace"
)

func writeTrace(t *testing.T, path string, build func(r *trace.Recorder)) {
	t.Helper()
	r := trace.New()
	build(r)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := r.WriteChromeTrace(f); err != nil {
		t.Fatal(err)
	}
}

func TestRunOverlay(t *testing.T) {
	dir := t.TempDir()
	simPath := filepath.Join(dir, "sim.json")
	livePath := filepath.Join(dir, "live.json")
	writeTrace(t, simPath, func(r *trace.Recorder) {
		r.Add("worker0/gpu", "fp0", 0, 0.4)
		r.Add("worker0/net", "push L00", 0.4, 1.0)
	})
	writeTrace(t, livePath, func(r *trace.Recorder) {
		r.Add("core/L00", "grad[1/2]", 0.1, 0.9)
		r.Add("netps/c1", "push k0#1", 0.9, 2.0) // longer horizon than sim
	})
	out, err := runOverlay(simPath, livePath, 60)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"shared timebase: 0 .. 2s",
		"=== sim: 2 spans, 2 lanes ===",
		"=== live: 2 spans, 2 lanes ===",
		"worker0/gpu", "worker0/net", "core/L00", "netps/c1", "#",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("overlay missing %q:\n%s", want, out)
		}
	}
	// The sim trace stops at t=1 on a horizon of 2: its lanes must show
	// under 100% utilization while the live netps lane covers the tail.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "worker0/gpu") && !strings.Contains(line, "20%") {
			t.Errorf("worker0/gpu utilization on shared timebase: %s", line)
		}
	}
}

func TestRunOverlayErrors(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	writeTrace(t, good, func(r *trace.Recorder) { r.Add("l", "s", 0, 1) })
	if _, err := runOverlay("", good, 80); err == nil {
		t.Fatal("missing sim path accepted")
	}
	if _, err := runOverlay(good, "", 80); err == nil {
		t.Fatal("missing live path accepted")
	}
	if _, err := runOverlay(good, filepath.Join(dir, "absent.json"), 80); err == nil {
		t.Fatal("missing file accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := runOverlay(good, bad, 80); err == nil {
		t.Fatal("malformed trace accepted")
	}
}

func TestOverlayEmpty(t *testing.T) {
	out := overlay(trace.New(), trace.New(), 10)
	if !strings.Contains(out, "(empty trace)") {
		t.Fatalf("empty overlay:\n%s", out)
	}
}

package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"bytescheduler/internal/netps"
)

// PS-server macro-benchmark mode (-ps-bench): measures the live netps
// server's throughput and latency under many concurrent clients, sharded
// vs. the single-lock seed shape, and writes the BENCH_PR6.json evidence.
var (
	psBench = flag.Bool("ps-bench", false,
		"run the netps server macro-benchmark instead of the experiment suite")
	psClients = flag.String("ps-clients", "64,256,1024",
		"comma-separated client-count tiers for -ps-bench")
	psDuration = flag.Duration("ps-duration", 2*time.Second,
		"per-tier measurement duration for -ps-bench")
	psShards = flag.Int("ps-shards", 0,
		"server shard count for -ps-bench (0 = netps default)")
	psPool = flag.Int("ps-pool", 0,
		"server handler-pool size for -ps-bench (0 = netps default)")
	psPayload = flag.Int("ps-payload", 64,
		"push payload float32 count for -ps-bench")
	psTCPClients = flag.Int("ps-tcp-clients", 0,
		"also run one real-TCP tier with this many clients (0 = largest in -ps-clients)")
)

// psSnapshot is the -ps-bench JSON evidence: per-tier sharded and
// single-lock results plus the headline ratio at the largest tier.
type psSnapshot struct {
	GeneratedAt string             `json:"generated_at"`
	GoVersion   string             `json:"go_version"`
	Cores       int                `json:"cores"`
	Tiers       []psTier           `json:"tiers"`
	TCP         *netps.LoadResult  `json:"tcp,omitempty"`
	Summary     map[string]float64 `json:"summary"`
}

type psTier struct {
	Clients    int              `json:"clients"`
	Sharded    netps.LoadResult `json:"sharded"`
	SingleLock netps.LoadResult `json:"single_lock"`
	SpeedupX   float64          `json:"speedup_x"`
}

// runPSBench executes the -ps-bench mode and reports whether it handled
// the invocation (main returns immediately when it did).
func runPSBench(jsonPath string) bool {
	if !*psBench {
		return false
	}
	tiers, err := parseTiers(*psClients)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsuite:", err)
		os.Exit(1)
	}
	snap := psSnapshot{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		Cores:       runtime.NumCPU(),
		Summary:     map[string]float64{},
	}
	largest := 0
	for _, clients := range tiers {
		if clients > largest {
			largest = clients
		}
		tier := psTier{Clients: clients}
		for _, baseline := range []bool{false, true} {
			res, err := netps.RunLoad(netps.LoadOptions{
				Clients:            clients,
				Duration:           *psDuration,
				PayloadFloats:      *psPayload,
				Shards:             *psShards,
				Pool:               *psPool,
				SingleLockBaseline: baseline,
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchsuite:", err)
				os.Exit(1)
			}
			if baseline {
				tier.SingleLock = res
			} else {
				tier.Sharded = res
			}
			fmt.Printf("ps-bench %-12s clients=%-5d shards=%-3d ops/s=%-10.0f p50=%.0fµs p99=%.0fµs\n",
				res.Mode, res.Clients, res.Shards, res.OpsPerSec, res.P50Micros, res.P99Micros)
		}
		if tier.SingleLock.OpsPerSec > 0 {
			tier.SpeedupX = tier.Sharded.OpsPerSec / tier.SingleLock.OpsPerSec
		}
		snap.Tiers = append(snap.Tiers, tier)
		snap.Summary[fmt.Sprintf("sharded_vs_single_lock_%d", clients)] = tier.SpeedupX
	}
	// One real-TCP tier through the multiplexer + handler pool, for the
	// connection-economy evidence (server goroutines vs. client count).
	tcpClients := *psTCPClients
	if tcpClients <= 0 {
		tcpClients = largest
	}
	if tcpClients > 0 {
		res, err := netps.RunLoad(netps.LoadOptions{
			Clients:       tcpClients,
			Duration:      *psDuration,
			PayloadFloats: *psPayload,
			Shards:        *psShards,
			Pool:          *psPool,
			TCP:           true,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchsuite:", err)
			os.Exit(1)
		}
		snap.TCP = &res
		snap.Summary["tcp_server_goroutines"] = float64(res.ServerGoros)
		snap.Summary["tcp_clients"] = float64(res.Clients)
		fmt.Printf("ps-bench %-12s clients=%-5d shards=%-3d ops/s=%-10.0f p99=%.0fµs server-goroutines=%d\n",
			res.Mode, res.Clients, res.Shards, res.OpsPerSec, res.P99Micros, res.ServerGoros)
	}
	if jsonPath != "" {
		buf, err := json.MarshalIndent(snap, "", "  ")
		if err == nil {
			err = os.WriteFile(jsonPath, append(buf, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchsuite:", err)
			os.Exit(1)
		}
		fmt.Printf("ps-bench: snapshot written to %s\n", jsonPath)
	}
	return true
}

func parseTiers(spec string) ([]int, error) {
	var tiers []int
	for _, f := range strings.Split(spec, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad -ps-clients tier %q", f)
		}
		tiers = append(tiers, n)
	}
	if len(tiers) == 0 {
		return nil, fmt.Errorf("-ps-clients is empty")
	}
	return tiers, nil
}

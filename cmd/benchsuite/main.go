// Command benchsuite regenerates every table and figure of the paper's
// evaluation as text tables (see DESIGN.md's per-experiment index).
//
// Trials execute on the internal/sweep engine: a bounded worker pool
// (default GOMAXPROCS, capped with -parallel) with a memoizing result
// cache shared by all experiments in the invocation. Experiments
// themselves also run concurrently, but their tables are printed in
// stable registry order, and all results are bitwise-identical to a
// serial run at the same seed.
//
// Examples:
//
//	benchsuite                    # run everything, quick sizing
//	benchsuite -full              # full grids (slower)
//	benchsuite -run FIG10,TAB1    # selected experiments
//	benchsuite -parallel 4        # cap the trial worker pool
//	benchsuite -json bench.json   # machine-readable perf snapshot
//	benchsuite -json bench.json -measure-serial  # include serial wall + speedup
//	benchsuite -list
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"bytescheduler/internal/experiments"
	"bytescheduler/internal/sweep"
)

// expResult is one experiment's outcome from a suite pass.
type expResult struct {
	tab     experiments.Table
	err     error
	seconds float64
}

// expJSON is the per-experiment slice of the -json snapshot.
type expJSON struct {
	ID          string             `json:"id"`
	Title       string             `json:"title"`
	WallSeconds float64            `json:"wall_seconds"`
	Metrics     map[string]float64 `json:"metrics"`
}

// snapshot is the -json perf snapshot: per-experiment metrics and
// wall-clock plus engine cache statistics, for recording BENCH_*.json
// trajectories across PRs.
type snapshot struct {
	GeneratedAt       string    `json:"generated_at"`
	GoVersion         string    `json:"go_version"`
	Cores             int       `json:"cores"`
	Workers           int       `json:"workers"`
	Quick             bool      `json:"quick"`
	Seed              int64     `json:"seed"`
	WallSeconds       float64   `json:"wall_seconds"`
	SerialWallSeconds float64   `json:"serial_wall_seconds,omitempty"`
	SpeedupX          float64   `json:"speedup_x,omitempty"`
	Trials            uint64    `json:"sweep_trials_total"`
	CacheHits         uint64    `json:"sweep_cache_hits_total"`
	Experiments       []expJSON `json:"experiments"`
}

// runSuite executes the selected experiments on eng. With concurrent=true
// the experiments run as goroutines (the engine's pool still bounds total
// trial parallelism); results are always returned in selection order.
// skipLive leaves live (wall-clock) experiments as zero results — used by
// the serial reference pass, whose purpose is bitwise comparison, which
// live measurements cannot satisfy.
func runSuite(selected []experiments.Experiment, opts experiments.Opts, concurrent, skipLive bool) []expResult {
	results := make([]expResult, len(selected))
	if !concurrent {
		for i, e := range selected {
			if skipLive && e.Live() {
				continue
			}
			start := time.Now()
			tab, err := e.Run(opts)
			results[i] = expResult{tab: tab, err: err, seconds: time.Since(start).Seconds()}
		}
		return results
	}
	done := make([]chan struct{}, len(selected))
	for i := range selected {
		if skipLive && selected[i].Live() {
			continue
		}
		done[i] = make(chan struct{})
		go func(i int) {
			defer close(done[i])
			start := time.Now()
			tab, err := selected[i].Run(opts)
			results[i] = expResult{tab: tab, err: err, seconds: time.Since(start).Seconds()}
		}(i)
	}
	for i := range done {
		if done[i] != nil {
			<-done[i]
		}
	}
	return results
}

func main() {
	var (
		runIDs   = flag.String("run", "all", "comma-separated experiment IDs, or 'all'")
		full     = flag.Bool("full", false, "full paper-scale grids instead of quick sizing")
		seed     = flag.Int64("seed", 1, "random seed")
		list     = flag.Bool("list", false, "list experiments and exit")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0),
			"trial worker-pool size (1 = serial; results are identical at any value)")
		jsonPath = flag.String("json", "",
			"write a machine-readable perf snapshot (per-experiment metrics, wall-clock, cache stats) to this path")
		measureSerial = flag.Bool("measure-serial", false,
			"also run the suite serially (workers=1, cold cache) and report the parallel speedup; implies -json evidence")
	)
	flag.Parse()

	if runPSBench(*jsonPath) {
		return
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-14s %s\n", e.ID, e.Desc)
		}
		return
	}

	var selected []experiments.Experiment
	if strings.EqualFold(*runIDs, "all") {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*runIDs, ",") {
			e, err := experiments.ByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchsuite:", err)
				os.Exit(1)
			}
			selected = append(selected, e)
		}
	}

	// Optional serial reference pass: fresh 1-worker engine with a cold
	// private cache, experiments strictly sequential.
	var serialWall float64
	var serialResults []expResult
	if *measureSerial {
		serialOpts := experiments.Opts{Quick: !*full, Seed: *seed,
			Engine: sweep.New(sweep.WithWorkers(1))}
		start := time.Now()
		serialResults = runSuite(selected, serialOpts, false, true)
		serialWall = time.Since(start).Seconds()
		for i, r := range serialResults {
			if r.err != nil {
				fmt.Fprintf(os.Stderr, "benchsuite: serial %s: %v\n", selected[i].ID, r.err)
				os.Exit(1)
			}
		}
	}

	eng := sweep.New(sweep.WithWorkers(*parallel))
	opts := experiments.Opts{Quick: !*full, Seed: *seed, Engine: eng}
	start := time.Now()
	results := runSuite(selected, opts, eng.Workers() > 1, false)
	wall := time.Since(start).Seconds()

	for i, r := range results {
		if r.err != nil {
			fmt.Fprintf(os.Stderr, "benchsuite: %s: %v\n", selected[i].ID, r.err)
			os.Exit(1)
		}
		fmt.Print(r.tab.Format())
		fmt.Printf("(%s in %.1fs)\n\n", selected[i].ID, r.seconds)
	}

	trials, hits := eng.Stats()
	fmt.Printf("suite: %d experiments in %.1fs, %d workers, %d trials (%d cache hits)\n",
		len(selected), wall, eng.Workers(), trials, hits)
	if *measureSerial {
		// The parallel pass must reproduce the serial pass exactly.
		// Live experiments are wall-clock measurements and are excluded
		// from the serial pass and the bitwise comparison.
		for i := range results {
			if selected[i].Live() {
				continue
			}
			if !metricsEqual(serialResults[i].tab.Metrics, results[i].tab.Metrics) {
				fmt.Fprintf(os.Stderr, "benchsuite: %s: parallel metrics diverge from serial run\n", selected[i].ID)
				os.Exit(1)
			}
		}
		for _, e := range selected {
			if e.Live() {
				fmt.Printf("serial reference: %s skipped (live wall-clock experiment, not bitwise-reproducible)\n", e.ID)
			}
		}
		fmt.Printf("serial reference: %.1fs -> speedup %.2fx (metrics bitwise-identical)\n",
			serialWall, serialWall/wall)
	}

	if *jsonPath != "" {
		snap := snapshot{
			GeneratedAt:       time.Now().UTC().Format(time.RFC3339),
			GoVersion:         runtime.Version(),
			Cores:             runtime.NumCPU(),
			Workers:           eng.Workers(),
			Quick:             !*full,
			Seed:              *seed,
			WallSeconds:       wall,
			SerialWallSeconds: serialWall,
			Trials:            trials,
			CacheHits:         hits,
		}
		if serialWall > 0 && wall > 0 {
			snap.SpeedupX = serialWall / wall
		}
		for i, r := range results {
			snap.Experiments = append(snap.Experiments, expJSON{
				ID:          r.tab.ID,
				Title:       r.tab.Title,
				WallSeconds: results[i].seconds,
				Metrics:     r.tab.Metrics,
			})
		}
		buf, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchsuite: json:", err)
			os.Exit(1)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonPath, buf, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchsuite:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
}

// metricsEqual compares two metric maps for exact (bitwise) equality.
func metricsEqual(a, b map[string]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		w, ok := b[k]
		if !ok || v != w {
			return false
		}
	}
	return true
}

// Command benchsuite regenerates every table and figure of the paper's
// evaluation as text tables (see DESIGN.md's per-experiment index).
//
// Examples:
//
//	benchsuite                  # run everything, quick sizing
//	benchsuite -full            # full grids (slower)
//	benchsuite -run FIG10,TAB1  # selected experiments
//	benchsuite -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"bytescheduler/internal/experiments"
)

func main() {
	var (
		runIDs = flag.String("run", "all", "comma-separated experiment IDs, or 'all'")
		full   = flag.Bool("full", false, "full paper-scale grids instead of quick sizing")
		seed   = flag.Int64("seed", 1, "random seed")
		list   = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-14s %s\n", e.ID, e.Desc)
		}
		return
	}

	opts := experiments.Opts{Quick: !*full, Seed: *seed}
	var selected []experiments.Experiment
	if strings.EqualFold(*runIDs, "all") {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*runIDs, ",") {
			e, err := experiments.ByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchsuite:", err)
				os.Exit(1)
			}
			selected = append(selected, e)
		}
	}

	for _, e := range selected {
		start := time.Now()
		tab, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchsuite: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Print(tab.Format())
		fmt.Printf("(%s in %.1fs)\n\n", e.ID, time.Since(start).Seconds())
	}
}

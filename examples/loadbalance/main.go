// Loadbalance: reproduce the §6.2 PS load-balancing observation. The
// Transformer's shared embedding is a single ~151 MB tensor; MXNet's naive
// round-robin tensor-to-server assignment parks it whole on one parameter
// server, which then bottlenecks every iteration. ByteScheduler's
// partitioning spreads the pieces across servers as a side effect.
package main

import (
	"fmt"
	"log"

	bs "bytescheduler"
)

func main() {
	exp := bs.Experiment{
		Model:         "Transformer",
		Framework:     bs.MXNet,
		Arch:          bs.PS,
		Transport:     bs.RDMA,
		BandwidthGbps: 100,
		GPUs:          16,
		Policy:        bs.Vanilla(),
	}

	info, err := bs.Info(exp.Model)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Transformer: %d layers, %.0fM params, %.0f MB of gradients per iteration\n",
		info.Layers, float64(info.Params)/1e6, float64(info.Bytes)/(1<<20))

	base, err := bs.Run(exp)
	if err != nil {
		log.Fatal(err)
	}

	exp.Policy = bs.WithPartitionCredit(2<<20, 8<<20)
	sched, err := bs.Run(exp)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("MXNet PS RDMA, 100Gbps, 16 GPUs (2 workers + 2 servers)")
	fmt.Printf("  baseline:      %8.0f tokens/s, PS load max/mean = %.2f\n",
		base.SamplesPerSec, base.LoadImbalance)
	fmt.Printf("  ByteScheduler: %8.0f tokens/s, PS load max/mean = %.2f\n",
		sched.SamplesPerSec, sched.LoadImbalance)
	fmt.Printf("  speedup:       %+7.1f%%\n", bs.Speedup(base, sched))
}

// Livescheduler: use the goroutine-safe scheduler directly, the way a real
// communication library would embed it. A toy "transport" with one
// concurrent send slot per direction stands in for the network; backward
// propagation produces gradients from the output layer down, and the
// scheduler reorders and partitions them so layer 0 — the tensor the next
// forward pass needs first — finishes early despite being produced last.
package main

import (
	"fmt"
	"sort"
	"sync"
	"time"

	bs "bytescheduler"
)

// transport simulates a FIFO network: one message at a time, 1 GB/s.
type transport struct {
	mu   sync.Mutex
	sent []string
}

func (tr *transport) send(name string, bytes int64, done func()) {
	tr.mu.Lock()
	tr.sent = append(tr.sent, name)
	tr.mu.Unlock()
	go func() {
		time.Sleep(time.Duration(float64(bytes) / 1e9 * float64(time.Second)))
		done()
	}()
}

func main() {
	sched := bs.NewScheduler(bs.WithPartitionCredit(4<<20, 8<<20))
	tr := &transport{}

	layers := []struct {
		name  string
		layer int
		bytes int64
	}{
		{"conv1", 0, 1 << 20},
		{"conv2", 1, 8 << 20},
		{"fc", 2, 32 << 20},
	}

	var wg sync.WaitGroup
	finished := make([]time.Time, len(layers))
	start := time.Now()
	tasks := make([]*bs.CommTask, len(layers))
	for i, l := range layers {
		i, l := i, l
		tasks[i] = &bs.CommTask{
			Layer: l.layer,
			Name:  l.name,
			Bytes: l.bytes,
			Start: func(sub bs.SubTask, done func()) {
				tr.send(fmt.Sprintf("%s[%d/%d]", l.name, sub.Index, sub.Count), sub.Bytes, done)
			},
			OnFinished: func() {
				finished[i] = time.Now()
				wg.Done()
			},
		}
		wg.Add(1)
		if err := sched.Enqueue(tasks[i]); err != nil {
			panic(err)
		}
	}

	// Backward propagation: gradients become ready from the LAST layer to
	// the first, with a little compute time in between.
	for i := len(tasks) - 1; i >= 0; i-- {
		time.Sleep(3 * time.Millisecond)
		if err := sched.NotifyReady(tasks[i]); err != nil {
			panic(err)
		}
	}
	wg.Wait()
	sched.Shutdown()

	fmt.Println("completion order (layer 0 should finish before the big fc tensor):")
	order := make([]int, len(layers))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return finished[order[a]].Before(finished[order[b]]) })
	for _, i := range order {
		fmt.Printf("  %-5s (layer %d, %2d MB) finished at %6.1fms\n",
			layers[i].name, layers[i].layer, layers[i].bytes>>20,
			float64(finished[i].Sub(start).Microseconds())/1000)
	}
	st := sched.Stats()
	fmt.Printf("scheduler: %d tasks, %d partitions, %d preemptions\n",
		st.TasksEnqueued, st.SubsStarted, st.Preemptions)
}

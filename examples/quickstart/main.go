// Quickstart: compare vanilla FIFO communication against ByteScheduler on
// the paper's headline setup — VGG16, MXNet-style engine, parameter servers
// over 100 Gbps RDMA, 32 GPUs.
package main

import (
	"fmt"
	"log"

	bs "bytescheduler"
)

func main() {
	exp := bs.Experiment{
		Model:         "VGG16",
		Framework:     bs.MXNet,
		Arch:          bs.PS,
		Transport:     bs.RDMA,
		BandwidthGbps: 100,
		GPUs:          32,
		Policy:        bs.Vanilla(),
	}

	base, err := bs.Run(exp)
	if err != nil {
		log.Fatal(err)
	}

	exp.Policy = bs.WithPartitionCredit(2<<20, 8<<20) // 2 MB partitions, 8 MB credit
	sched, err := bs.Run(exp)
	if err != nil {
		log.Fatal(err)
	}

	linear, err := bs.Linear(exp)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("VGG16, MXNet PS RDMA, 100Gbps, %d GPUs\n", exp.GPUs)
	fmt.Printf("  vanilla FIFO:    %8.0f %s/s\n", base.SamplesPerSec, base.SampleUnit)
	fmt.Printf("  ByteScheduler:   %8.0f %s/s  (%d preemptions)\n",
		sched.SamplesPerSec, sched.SampleUnit, sched.Preemptions)
	fmt.Printf("  linear scaling:  %8.0f %s/s\n", linear, base.SampleUnit)
	fmt.Printf("  speedup:         %+7.1f%%\n", bs.Speedup(base, sched))
}

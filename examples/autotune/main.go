// Autotune: let the Bayesian-Optimization tuner find the best partition and
// credit sizes for a setup, and compare against a hand-picked configuration
// (§4.3, Table 1). All-reduce wants far larger partitions than PS because
// every collective pays a synchronization cost across all workers.
package main

import (
	"fmt"
	"log"

	bs "bytescheduler"
)

func main() {
	for _, arch := range []bs.Arch{bs.PS, bs.AllReduce} {
		exp := bs.Experiment{
			Model:         "Transformer",
			Framework:     bs.MXNet,
			Arch:          arch,
			Transport:     bs.RDMA,
			BandwidthGbps: 100,
			GPUs:          16,
			Policy:        bs.Vanilla(),
		}

		base, err := bs.Run(exp)
		if err != nil {
			log.Fatal(err)
		}

		tuned, err := bs.Tune(exp, 12, 1)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("Transformer, MXNet %v RDMA, 16 GPUs\n", arch)
		fmt.Printf("  baseline:  %8.0f tokens/s\n", base.SamplesPerSec)
		fmt.Printf("  tuned:     %8.0f tokens/s  (%d trials)\n", tuned.SamplesPerSec, tuned.Trials)
		fmt.Printf("  best:      partition %.1f MB, credit %.1f MB\n",
			float64(tuned.Partition)/(1<<20), float64(tuned.Credit)/(1<<20))
		fmt.Printf("  speedup:   %+.1f%%\n\n",
			(tuned.SamplesPerSec-base.SamplesPerSec)/base.SamplesPerSec*100)
	}
	fmt.Println("the best (partition, credit) differs per architecture and model — at larger")
	fmt.Println("scales all-reduce prefers much bigger partitions than PS (Table 1; run")
	fmt.Println("`go run ./cmd/benchsuite -run TAB1 -full` to reproduce).")
}

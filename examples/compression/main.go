// Compression: gradient compression is orthogonal and complementary to
// communication scheduling (§8). Compression shrinks what crosses the wire;
// the scheduler still decides the order — the two stack.
package main

import (
	"fmt"
	"log"

	bs "bytescheduler"
)

func main() {
	base := bs.Experiment{
		Model:         "GNMT", // 1.1 GB of gradients: heavily communication-bound
		Framework:     bs.MXNet,
		Arch:          bs.PS,
		Transport:     bs.RDMA,
		BandwidthGbps: 100,
		GPUs:          16,
		Policy:        bs.Vanilla(),
	}

	show := func(label string, e bs.Experiment) bs.Measurement {
		m, err := bs.Run(e)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-28s %9.0f tokens/s\n", label, m.SamplesPerSec)
		return m
	}

	fmt.Println("GNMT, MXNet PS RDMA, 100Gbps, 16 GPUs")
	show("vanilla FIFO", base)

	sched := base
	sched.Policy = bs.WithPartitionCredit(2<<20, 16<<20)
	plain := show("ByteScheduler", sched)

	fp16 := sched
	fp16.Compression = "fp16"
	show("ByteScheduler + fp16", fp16)

	int8 := sched
	int8.Compression = "int8"
	show("ByteScheduler + int8", int8)

	topk := sched
	topk.Compression = "topk:0.01"
	withTopK := show("ByteScheduler + top-1%", topk)

	fmt.Printf("\ncompression on top of scheduling: %+.0f%% more\n",
		bs.Speedup(plain, withTopK))
}

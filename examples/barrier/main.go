// Barrier: demonstrate crossing TensorFlow's inter-iteration global barrier
// (§3.4). Vanilla TensorFlow waits for every communication operation before
// the next iteration starts, so reordering transmissions barely helps; the
// ByteScheduler plugin replaces the barrier with layer-wise out-of-engine
// dependencies and unlocks the full gain.
package main

import (
	"fmt"
	"log"

	bs "bytescheduler"
)

func main() {
	exp := bs.Experiment{
		Model:         "VGG16",
		Framework:     bs.TensorFlow,
		Arch:          bs.PS,
		Transport:     bs.TCP,
		BandwidthGbps: 25,
		GPUs:          16,
		Policy:        bs.Vanilla(),
	}

	vanilla, err := bs.Run(exp)
	if err != nil {
		log.Fatal(err)
	}

	// Same FIFO order, but with the barrier crossed: TicTac-style priority
	// without partitioning already needs per-layer dependencies.
	exp.Policy = bs.TicTac()
	priorityOnly, err := bs.Run(exp)
	if err != nil {
		log.Fatal(err)
	}

	exp.Policy = bs.WithPartitionCredit(8<<20, 32<<20)
	full, err := bs.Run(exp)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("VGG16, TensorFlow PS TCP, 25Gbps, 16 GPUs")
	fmt.Printf("  vanilla (global barrier):        %8.0f images/s\n", vanilla.SamplesPerSec)
	fmt.Printf("  crossed barrier + priority:      %8.0f images/s (%+.0f%%)\n",
		priorityOnly.SamplesPerSec, bs.Speedup(vanilla, priorityOnly))
	fmt.Printf("  crossed + priority + partition:  %8.0f images/s (%+.0f%%)\n",
		full.SamplesPerSec, bs.Speedup(vanilla, full))
}

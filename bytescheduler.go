// Package bytescheduler is a Go reproduction of "A Generic Communication
// Scheduler for Distributed DNN Training Acceleration" (ByteScheduler,
// SOSP 2019).
//
// It provides two public surfaces:
//
//   - A live, goroutine-safe tensor scheduler (NewScheduler) implementing
//     the paper's core algorithm — unified CommTask abstraction, tensor
//     partitioning, priority queueing with credit-based preemption — for
//     embedding in real communication stacks.
//
//   - A deterministic simulation harness (Run, Tune, Linear) reproducing
//     the paper's evaluation: simulated MXNet/TensorFlow/PyTorch engines,
//     PS and ring all-reduce substrates, TCP/RDMA transports, and the
//     Bayesian-Optimization auto-tuner for partition and credit sizes.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// reproduced tables and figures.
package bytescheduler

import (
	"fmt"
	"strings"

	"bytescheduler/internal/allreduce"
	"bytescheduler/internal/compress"
	"bytescheduler/internal/core"
	"bytescheduler/internal/model"
	"bytescheduler/internal/network"
	"bytescheduler/internal/plugin"
	"bytescheduler/internal/ps"
	"bytescheduler/internal/runner"
	"bytescheduler/internal/tune"
)

// Transport selects the network stack.
type Transport int

const (
	// TCP is the kernel TCP/IP stack profile.
	TCP Transport = iota
	// RDMA is the kernel-bypass RDMA profile.
	RDMA
)

// String returns the transport name.
func (t Transport) String() string {
	if t == RDMA {
		return "RDMA"
	}
	return "TCP"
}

func (t Transport) profile() network.Profile {
	if t == RDMA {
		return network.RDMA()
	}
	return network.TCP()
}

// Arch selects the gradient synchronization architecture.
type Arch int

const (
	// PS is the parameter-server architecture.
	PS Arch = iota
	// AllReduce is ring all-reduce (NCCL-style).
	AllReduce
)

// String returns the architecture name.
func (a Arch) String() string {
	if a == AllReduce {
		return "NCCL"
	}
	return "PS"
}

func (a Arch) runnerArch() runner.Arch {
	if a == AllReduce {
		return runner.AllReduce
	}
	return runner.PS
}

// Framework selects the simulated training framework.
type Framework int

const (
	// MXNet is a declarative engine without a global barrier.
	MXNet Framework = iota
	// TensorFlow is a declarative engine with a global barrier.
	TensorFlow
	// PyTorch is an imperative engine with a global barrier.
	PyTorch
)

// String returns the framework name.
func (f Framework) String() string { return f.plugin().String() }

func (f Framework) plugin() plugin.Framework {
	switch f {
	case TensorFlow:
		return plugin.TensorFlow
	case PyTorch:
		return plugin.PyTorch
	default:
		return plugin.MXNet
	}
}

// Policy is a communication scheduling policy.
type Policy struct {
	p         core.Policy
	scheduled bool
	// priority, when not PriorityDefault, derives the scheduling order
	// from the model's DAG timing profile at run time (runner.Config.
	// Priority) instead of a fixed PriorityFn on p.
	priority core.PriorityPolicy
}

// Vanilla returns the baseline policy of unmodified frameworks: FIFO order,
// no partitioning, no barrier crossing.
func Vanilla() Policy { return Policy{p: core.FIFO()} }

// P3 returns the policy of the P3 scheduler (Jayarajan et al.): 160 KB
// partitions with stop-and-wait transmission and layer priority.
func P3() Policy { return Policy{p: core.P3(), scheduled: true} }

// TicTac returns a priority-only policy without partitioning, approximating
// TicTac: scheduling order comes from critical-path analysis of the model's
// DAG timing profile (core.DAGTimings), not from the raw layer index.
func TicTac() Policy {
	return Policy{
		p:         core.Policy{Name: "tictac"},
		scheduled: true,
		priority:  core.PriorityCriticalPath,
	}
}

// WithPartitionCredit returns the ByteScheduler policy with explicit
// partition and credit sizes in bytes.
func WithPartitionCredit(partition, credit int64) Policy {
	return Policy{p: core.ByteScheduler(partition, credit), scheduled: true}
}

// WithMaxRetries returns a copy of the policy whose scheduler requeues each
// failed partition up to n times before declaring the task failed. Only
// meaningful for live schedulers whose CommTasks use StartErr.
func (p Policy) WithMaxRetries(n int) Policy {
	p.p = p.p.WithMaxRetries(n)
	return p
}

// Name returns the policy name, e.g. "bytescheduler".
func (p Policy) Name() string { return p.p.Name }

// FaultInjection describes deterministic fabric degradation applied to a
// simulated run: frame drops paid for with retransmission timeouts, latency
// spikes, and transient link outages. Faults surface as time, never loss —
// the fabric keeps its reliable in-order delivery contract, exactly as a
// retransmitting transport presents failures to the application. Supported
// on the PS fabric only (the collective substrate is analytic).
type FaultInjection struct {
	// Seed drives all fault draws; the same seed reproduces the same run.
	Seed int64
	// DropProb is the per-transmission frame-loss probability; each loss
	// adds RetransmitDelay (default: a TCP minimum RTO) to the message.
	DropProb        float64
	RetransmitDelay float64
	// SpikeProb and SpikeSec inject latency spikes (incast, GC pauses).
	SpikeProb float64
	SpikeSec  float64
	// Outages are transient windows during which a node's links carry no
	// new messages. PS fabric nodes are [0, machines) for workers and
	// [machines, 2*machines) for server shards.
	Outages []LinkOutage
}

// LinkOutage is one transient link failure at a fabric node.
type LinkOutage struct {
	Node            int
	Start, Duration float64
}

func (fi *FaultInjection) config() *network.FaultConfig {
	if fi == nil {
		return nil
	}
	fc := &network.FaultConfig{
		Seed:            fi.Seed,
		DropProb:        fi.DropProb,
		RetransmitDelay: fi.RetransmitDelay,
		SpikeProb:       fi.SpikeProb,
		SpikeSec:        fi.SpikeSec,
	}
	for _, o := range fi.Outages {
		fc.Outages = append(fc.Outages, network.Outage{
			Node: o.Node, Start: o.Start, Duration: o.Duration,
		})
	}
	return fc
}

// Experiment describes one simulated training configuration.
type Experiment struct {
	// Model is a zoo model name: VGG16, VGG19, ResNet50, Transformer,
	// AlexNet.
	Model string
	// Framework, Arch, Transport select the setup (§6.1's "8 different
	// setups").
	Framework Framework
	Arch      Arch
	Transport Transport
	// BandwidthGbps is the per-direction NIC speed (paper: 1–100).
	BandwidthGbps float64
	// GPUs is the total GPU count; a multiple of 8 (8 GPUs per machine).
	GPUs int
	// Policy selects the scheduler; Vanilla() for the baseline.
	Policy Policy
	// Priority overrides how the scheduler orders tensors: "" keeps the
	// policy's own order, "layer" ranks by layer index, "tictac" (or
	// "critical-path") ranks by remaining critical-path length from the
	// model's DAG timing profile, "random" is the seeded ablation arm.
	Priority string
	// AsyncPS enables asynchronous PS training.
	AsyncPS bool
	// Collective selects the all-reduce algorithm: "" or "ring",
	// "halving-doubling"/"hd", "double-tree"/"tree". Ignored for PS.
	Collective string
	// Compression enables gradient compression: "" (none), "fp16",
	// "int8", or "topk:<keep>" such as "topk:0.01". Composes with
	// scheduling (§8).
	Compression string
	// Assignment selects the PS placement strategy over tensors (or
	// partitions, once the policy partitions): "" or "round-robin" (the
	// paper's baseline), "size-balanced"/"lpt" (online greedy LPT that
	// fixes §6.2's load imbalance), or "hash-ring" (consistent hashing
	// that survives server churn). Ignored for all-reduce.
	Assignment string
	// Iterations and Warmup control measurement; zero selects defaults.
	Iterations, Warmup int
	// Jitter adds relative compute noise (e.g. 0.02); Seed seeds it.
	Jitter float64
	Seed   int64
	// Faults, if non-nil, degrades the fabric deterministically (PS only);
	// see FaultInjection.
	Faults *FaultInjection
	// Metrics, if non-nil, receives the run's counters, gauges and span
	// histograms — the same metric names a live scheduler publishes, so sim
	// and live scrapes are directly comparable.
	Metrics *Metrics
	// Trace, if non-nil, records the run's compute and network spans for
	// Chrome-trace export (TraceRecorder.WriteChromeTrace). The simulated
	// timeline uses the identical schema as a live trace.
	Trace *TraceRecorder
}

// Measurement is the outcome of one experiment.
type Measurement struct {
	// SamplesPerSec is the aggregate training speed.
	SamplesPerSec float64
	// SampleUnit is "images" or "tokens".
	SampleUnit string
	// IterTime is the steady-state iteration time in seconds.
	IterTime float64
	// LoadImbalance is the PS max/mean load ratio (0 for all-reduce).
	LoadImbalance float64
	// PlannedImbalance is max/mean of the placement's planned per-server
	// bytes (0 for all-reduce): the assigner's skew before traffic
	// effects. Comparing it with LoadImbalance separates placement error
	// from big-array striping and aggregation effects.
	PlannedImbalance float64
	// Preemptions counts priority preemptions performed by the scheduler.
	Preemptions uint64
	// Retransmits, Spikes and OutageDeferred count injected fabric faults
	// (all zero when Experiment.Faults is nil).
	Retransmits, Spikes, OutageDeferred uint64
}

func parseCompression(spec string) (*compress.Compressor, error) {
	switch {
	case spec == "":
		return nil, nil
	case spec == "fp16":
		c := compress.NewFP16()
		return &c, nil
	case spec == "int8":
		c := compress.NewInt8()
		return &c, nil
	case strings.HasPrefix(spec, "topk:"):
		var keep float64
		if _, err := fmt.Sscanf(spec, "topk:%g", &keep); err != nil {
			return nil, fmt.Errorf("bytescheduler: bad top-k spec %q", spec)
		}
		c := compress.NewTopK(keep)
		if err := c.Validate(); err != nil {
			return nil, err
		}
		return &c, nil
	}
	return nil, fmt.Errorf("bytescheduler: unknown compression %q", spec)
}

func (e Experiment) runnerConfig() (runner.Config, error) {
	m, err := model.ByName(e.Model)
	if err != nil {
		return runner.Config{}, err
	}
	collective := allreduce.RingAlgo
	if e.Collective != "" {
		collective, err = allreduce.AlgorithmByName(e.Collective)
		if err != nil {
			return runner.Config{}, err
		}
	}
	compression, err := parseCompression(e.Compression)
	if err != nil {
		return runner.Config{}, err
	}
	placement, err := ps.ParseStrategy(e.Assignment)
	if err != nil {
		return runner.Config{}, err
	}
	priority := e.Policy.priority
	if e.Priority != "" {
		priority, err = core.ParsePriorityPolicy(e.Priority)
		if err != nil {
			return runner.Config{}, err
		}
	}
	return runner.Config{
		Model:         m,
		Framework:     e.Framework.plugin(),
		Arch:          e.Arch.runnerArch(),
		Transport:     e.Transport.profile(),
		BandwidthGbps: e.BandwidthGbps,
		GPUs:          e.GPUs,
		Policy:        e.Policy.p,
		Scheduled:     e.Policy.scheduled,
		Priority:      priority,
		Async:         e.AsyncPS,
		Collective:    collective,
		Compression:   compression,
		Placement:     placement,
		Iterations:    e.Iterations,
		Warmup:        e.Warmup,
		Jitter:        e.Jitter,
		Seed:          e.Seed,
		Faults:        e.Faults.config(),
		Metrics:       e.Metrics.registry(),
		Trace:         e.Trace.recorder(),
	}, nil
}

// Run executes the experiment and returns its measured speed.
func Run(e Experiment) (Measurement, error) {
	cfg, err := e.runnerConfig()
	if err != nil {
		return Measurement{}, err
	}
	res, err := runner.Run(cfg)
	if err != nil {
		return Measurement{}, err
	}
	return Measurement{
		SamplesPerSec:    res.SamplesPerSec,
		SampleUnit:       cfg.Model.SampleUnit,
		IterTime:         res.IterTime,
		LoadImbalance:    res.LoadImbalance,
		PlannedImbalance: res.PlannedImbalance,
		Preemptions:      res.UpStats.Preemptions + res.DownStats.Preemptions,
		Retransmits:      res.Faults.Retransmits,
		Spikes:           res.Faults.Spikes,
		OutageDeferred:   res.Faults.OutageDeferred,
	}, nil
}

// Linear returns the linear-scalability reference speed for the
// experiment's model and GPU count.
func Linear(e Experiment) (float64, error) {
	cfg, err := e.runnerConfig()
	if err != nil {
		return 0, err
	}
	return runner.LinearScaling(cfg), nil
}

// TuneResult is an auto-tuning outcome.
type TuneResult struct {
	// Partition and Credit are the best sizes found, in bytes.
	Partition, Credit int64
	// SamplesPerSec is the speed at the tuned configuration.
	SamplesPerSec float64
	// Trials is the number of profiled configurations.
	Trials int
}

// Tune runs the paper's Bayesian-Optimization auto-tuner on the
// experiment's setup, searching partition and credit sizes over the given
// number of trials, and returns the best configuration found.
func Tune(e Experiment, trials int, seed int64) (TuneResult, error) {
	cfg, err := e.runnerConfig()
	if err != nil {
		return TuneResult{}, err
	}
	var firstErr error
	objective := func(p, c int64) float64 {
		speed, err := runner.SpeedWithParams(cfg, p, c)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		return speed
	}
	res := tune.PartitionCredit(tune.NewBO(tune.ParamBounds(), seed), objective, trials)
	if firstErr != nil {
		return TuneResult{}, firstErr
	}
	return TuneResult{
		Partition:     res.Partition,
		Credit:        res.Credit,
		SamplesPerSec: res.Speed,
		Trials:        res.Trials,
	}, nil
}

// OnlineTuneResult is the outcome of tuning on a live run.
type OnlineTuneResult struct {
	// Partition and Credit are the best sizes found, in bytes.
	Partition, Credit int64
	// FirstSpeed is the speed at the starting configuration; FinalSpeed
	// the speed after tuning.
	FirstSpeed, FinalSpeed float64
	// Restarts counts PS checkpoint-restarts caused by partition changes;
	// OverheadSec is their total cost.
	Restarts    int
	OverheadSec float64
}

// TuneOnline tunes partition and credit sizes on a single continuous
// training run — the paper's deployed mechanism (§4.3/§5), where BO
// profiles candidate configurations on live windows. The experiment's
// Policy provides the starting point and must be a partitioned scheduler
// policy (e.g. WithPartitionCredit).
func TuneOnline(e Experiment, trials int, seed int64) (OnlineTuneResult, error) {
	cfg, err := e.runnerConfig()
	if err != nil {
		return OnlineTuneResult{}, err
	}
	res, err := runner.RunOnlineTuned(runner.OnlineConfig{
		Config:         cfg,
		Trials:         trials,
		TuneSeed:       seed,
		RestartPenalty: 5,
	})
	if err != nil {
		return OnlineTuneResult{}, err
	}
	return OnlineTuneResult{
		Partition:   res.BestPartition,
		Credit:      res.BestCredit,
		FirstSpeed:  res.FirstWindowSpeed,
		FinalSpeed:  res.FinalSpeed,
		Restarts:    res.Restarts,
		OverheadSec: res.TuningOverhead,
	}, nil
}

// Models returns the registered model names.
func Models() []string { return model.Names() }

// ModelInfo summarizes a zoo model.
type ModelInfo struct {
	// Name is the canonical model name.
	Name string
	// Layers is the number of schedulable layers.
	Layers int
	// Params is the parameter count.
	Params int64
	// Bytes is the gradient/parameter volume per iteration.
	Bytes int64
	// BatchPerGPU is the default per-GPU batch size.
	BatchPerGPU int
	// SampleUnit is "images" or "tokens".
	SampleUnit string
}

// Info returns facts about a zoo model.
func Info(name string) (ModelInfo, error) {
	m, err := model.ByName(name)
	if err != nil {
		return ModelInfo{}, err
	}
	return ModelInfo{
		Name:        m.Name,
		Layers:      m.NumLayers(),
		Params:      m.Params(),
		Bytes:       m.TotalBytes(),
		BatchPerGPU: m.BatchPerGPU,
		SampleUnit:  m.SampleUnit,
	}, nil
}

// Speedup returns the percentage by which b is faster than a.
func Speedup(a, b Measurement) float64 {
	if a.SamplesPerSec == 0 {
		return 0
	}
	return (b.SamplesPerSec - a.SamplesPerSec) / a.SamplesPerSec * 100
}
